/**
 * @file
 * Tests for the quantum bridge: boundary semantics, delivery slack,
 * overlap buffering and reciprocal feedback.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <vector>

#include "abstractnet/latency_model.hh"
#include "cosim/bridge.hh"
#include "noc/cycle_network.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::cosim;

struct BridgeFixture
{
    explicit BridgeFixture(QuantumBridge::Options opts,
                           noc::NocParams p = noc::NocParams())
        : net(sim, "noc", p), bridge(sim, "bridge", net, p, opts)
    {
        bridge.setDeliveryHandler(
            [this](const noc::PacketPtr &pkt) {
                delivered.push_back(pkt);
            });
    }

    noc::PacketPtr
    send(NodeId src, NodeId dst, Tick when, std::uint32_t bytes = 8)
    {
        auto pkt = noc::makePacket(next_id++, src, dst,
                                   noc::MsgClass::Request, bytes, when);
        bridge.inject(pkt);
        return pkt;
    }

    Simulation sim;
    noc::CycleNetwork net;
    QuantumBridge bridge;
    std::vector<noc::PacketPtr> delivered;
    PacketId next_id = 1;
};

TEST(QuantumBridge, QuantumOneIsExact)
{
    QuantumBridge::Options o;
    o.quantum = 1;
    BridgeFixture f(o);
    f.send(0, 5, 0);
    f.bridge.advanceCoupled(200);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_DOUBLE_EQ(f.bridge.deliverySlack.maxValue(), 0.0);
}

TEST(QuantumBridge, LargeQuantumBoundsSlack)
{
    QuantumBridge::Options o;
    o.quantum = 64;
    BridgeFixture f(o);
    for (int i = 0; i < 50; ++i)
        f.send(static_cast<NodeId>(i % 64),
               static_cast<NodeId>((i * 13 + 1) % 64),
               static_cast<Tick>(i * 3));
    f.bridge.advanceCoupled(1024);
    ASSERT_EQ(f.delivered.size(), 50u);
    EXPECT_GT(f.bridge.deliverySlack.maxValue(), 0.0);
    EXPECT_LT(f.bridge.deliverySlack.maxValue(), 64.0);
}

TEST(QuantumBridge, OverlapDelaysInjectionsOneQuantum)
{
    QuantumBridge::Options o;
    o.quantum = 32;
    o.overlap = true;
    BridgeFixture f(o);
    // Inject mid-quantum, from inside the event simulation (as the
    // memory system does). The packet is held until the boundary, so
    // the network sees it ~27 cycles late; conservative coupling
    // charges that slip as queueing latency.
    noc::PacketPtr pkt;
    f.sim.eventq().scheduleLambda(5, [&] { pkt = f.send(0, 1, 5); });
    f.bridge.advanceCoupled(320);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_GE(pkt->queueLatency(), 20u);
}

TEST(QuantumBridge, ReciprocalDeliversFromEstimateImmediately)
{
    QuantumBridge::Options o;
    o.quantum = 64;
    o.coupling = QuantumBridge::Coupling::Reciprocal;
    BridgeFixture f(o, noc::NocParams());
    auto pkt = f.send(0, 9, 0, 8); // 2 hops
    // The system-side delivery happens at injection time from the
    // zero-load-seeded table, before any network cycle ran.
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(pkt->deliver_tick,
              abstractnet::zeroLoadLatency(noc::NocParams(), 2, 1));
    // The detailed clone still flows and tunes the table.
    f.bridge.advanceCoupled(640);
    EXPECT_EQ(f.bridge.table().observations(), 1u);
    EXPECT_EQ(f.bridge.estimateError.count(), 1u);
}

TEST(QuantumBridge, ReciprocalEstimatesConvergeUnderLoad)
{
    QuantumBridge::Options o;
    o.quantum = 32;
    o.coupling = QuantumBridge::Coupling::Reciprocal;
    BridgeFixture f(o);
    // Steady single-flow stream: estimates should converge to the
    // detailed latency, making late errors small.
    for (int i = 0; i < 400; ++i)
        f.send(0, 9, static_cast<Tick>(i * 8));
    f.bridge.advanceCoupled(5000);
    EXPECT_EQ(f.bridge.table().observations(), 400u);
    // After convergence, fresh estimates match the zero-load truth of
    // this uncontended flow.
    double est = f.bridge.table().estimate(0, 2, 1);
    double truth = static_cast<double>(
        abstractnet::zeroLoadLatency(noc::NocParams(), 2, 1));
    EXPECT_NEAR(est, truth, 1.5);
}

TEST(QuantumBridge, ReciprocalOverlapShiftsClonesNotEstimates)
{
    QuantumBridge::Options o;
    o.quantum = 64;
    o.overlap = true;
    o.coupling = QuantumBridge::Coupling::Reciprocal;
    BridgeFixture f(o);
    noc::PacketPtr pkt;
    f.sim.eventq().scheduleLambda(10, [&] { pkt = f.send(3, 4, 10); });
    f.bridge.advanceCoupled(640);
    ASSERT_EQ(f.delivered.size(), 1u);
    // The system-side delivery used the estimate relative to the true
    // injection tick (no quantum slip).
    EXPECT_LT(pkt->latency(), 32u);
    // And the feedback observation excluded the hand-off slack: the
    // observed latency is near zero-load, not inflated by a quantum.
    double est = f.bridge.table().estimate(0, 1, 1);
    EXPECT_LT(est, 20.0);
}

TEST(QuantumBridge, FeedbackPopulatesTable)
{
    QuantumBridge::Options o;
    o.quantum = 16;
    o.feedback = true;
    BridgeFixture f(o);
    for (int i = 0; i < 30; ++i)
        f.send(0, 9, static_cast<Tick>(i * 4)); // 2 hops on 8x8
    f.bridge.advanceCoupled(500);
    EXPECT_EQ(f.bridge.table().observations(), 30u);
    // The tuned estimate reflects the observed latencies.
    double est = f.bridge.table().estimate(0, 2, 1);
    double mean = 0;
    for (const auto &pkt : f.delivered)
        mean += static_cast<double>(pkt->latency());
    mean /= static_cast<double>(f.delivered.size());
    EXPECT_NEAR(est, mean, 3.0);
}

TEST(QuantumBridge, FeedbackOffLeavesTableUntouched)
{
    QuantumBridge::Options o;
    o.feedback = false;
    BridgeFixture f(o);
    for (int i = 0; i < 10; ++i)
        f.send(0, 9, static_cast<Tick>(i * 4));
    f.bridge.advanceCoupled(1000);
    EXPECT_EQ(f.bridge.table().observations(), 0u);
}

TEST(QuantumBridge, IdleReflectsWholePipeline)
{
    QuantumBridge::Options o;
    o.quantum = 8;
    o.overlap = true;
    BridgeFixture f(o);
    EXPECT_TRUE(f.bridge.idle());
    f.send(0, 63, 0);
    EXPECT_FALSE(f.bridge.idle());
    f.bridge.advanceCoupled(1000);
    EXPECT_TRUE(f.bridge.idle());
}

TEST(QuantumBridge, CountsQuantaAndPackets)
{
    QuantumBridge::Options o;
    o.quantum = 100;
    BridgeFixture f(o);
    f.send(0, 1, 0);
    f.send(1, 2, 0);
    f.bridge.advanceCoupled(1000);
    EXPECT_EQ(f.bridge.quantaRun(), 10u);
    EXPECT_DOUBLE_EQ(f.bridge.packetsForwarded.value(), 2.0);
    EXPECT_DOUBLE_EQ(f.bridge.packetsDelivered.value(), 2.0);
}

TEST(QuantumBridge, ZeroQuantumIsFatal)
{
    Simulation sim;
    noc::NocParams p;
    noc::CycleNetwork net(sim, "noc", p);
    QuantumBridge::Options o;
    o.quantum = 0;
    EXPECT_SIM_ERROR(QuantumBridge(sim, "bridge", net, p, o), "positive");
}

TEST(QuantumBridge, SyncDeterministicAcrossRuns)
{
    auto run = [] {
        QuantumBridge::Options o;
        o.quantum = 64;
        BridgeFixture f(o);
        for (int i = 0; i < 40; ++i)
            f.send(static_cast<NodeId>(i % 64),
                   static_cast<NodeId>((i * 7 + 3) % 64),
                   static_cast<Tick>(i * 2));
        f.bridge.advanceCoupled(2000);
        std::vector<Tick> ticks;
        for (const auto &pkt : f.delivered)
            ticks.push_back(pkt->deliver_tick);
        return ticks;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
