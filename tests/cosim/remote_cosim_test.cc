/**
 * @file
 * Full-system acceptance tests for the out-of-process NoC backend:
 * a co-simulation with network.backend=remote is bit-identical to the
 * same run with the in-process backend, a killed server degrades the
 * run to tuned-abstract service instead of hanging it, and a paired
 * cross-process checkpoint resumes to the same final state as an
 * uninterrupted run.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "cosim/full_system.hh"
#include "ipc/nocd_server.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace
{

using namespace rasim;
using namespace rasim::cosim;

void
snapshotStats(const stats::Group &g,
              std::vector<std::tuple<std::string, std::string, double>>
                  &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.emplace_back(g.path() + "." + s->name(), sub, v);
    for (const stats::Group *c : g.children())
        snapshotStats(*c, out);
}

class RemoteCosim : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        addr_ = "unix:/tmp/rasim-remote-cosim-" +
                std::to_string(::getpid()) + ".sock";
        startServer();
    }

    void
    TearDown() override
    {
        stopServer();
    }

    void
    startServer()
    {
        ipc::NocServerOptions opts;
        opts.address = addr_;
        server_ = std::make_unique<ipc::NocServer>(opts);
        thread_ = std::thread([this] { server_->run(); });
    }

    void
    stopServer()
    {
        if (!server_)
            return;
        server_->stop();
        thread_.join();
        server_.reset();
    }

    FullSystemOptions
    smallOptions(bool remote, bool parallel = false)
    {
        FullSystemOptions o;
        o.mode = Mode::CosimCycle;
        o.app = "lu";
        o.ops_per_core = 60;
        o.quantum = 64;
        o.noc.columns = 4;
        o.noc.rows = 4;
        o.mem.l1_sets = 16;
        o.parallel = parallel;
        if (parallel)
            o.engine_workers = 2;
        if (remote) {
            o.network_backend = "remote";
            o.remote.socket = addr_;
        }
        return o;
    }

    std::string addr_;
    std::unique_ptr<ipc::NocServer> server_;
    std::thread thread_;
};

TEST_F(RemoteCosim, RemoteRunBitIdenticalToInproc)
{
    for (bool parallel : {false, true}) {
        // In-process reference.
        FullSystem ref(Config(), smallOptions(false, parallel));
        Tick ref_finish = ref.run(4000000);
        ASSERT_TRUE(ref.allCoresDone());
        std::vector<std::tuple<std::string, std::string, double>>
            ref_net_stats;
        snapshotStats(*ref.cycleNetwork(), ref_net_stats);

        // Same co-simulation, detailed fabric in the server. With
        // parallel=true the pool runs server-side.
        FullSystem sys(Config(), smallOptions(true, parallel));
        Tick finish = sys.run(4000000);
        ASSERT_TRUE(sys.allCoresDone()) << "parallel=" << parallel;

        EXPECT_EQ(finish, ref_finish) << "parallel=" << parallel;
        EXPECT_EQ(sys.packetsDelivered(), ref.packetsDelivered());
        EXPECT_DOUBLE_EQ(sys.meanPacketLatency(),
                         ref.meanPacketLatency());

        // The reciprocal feedback evolved identically on both sides
        // of the process boundary...
        EXPECT_TRUE(sys.bridge().table().identicalTo(
            ref.bridge().table()))
            << "parallel=" << parallel;
        // ...and so did the server's shadow copy of it.
        ASSERT_NE(sys.remoteNetwork(), nullptr);
        EXPECT_TRUE(sys.remoteNetwork()->fetchTunedTable().identicalTo(
            ref.bridge().table()))
            << "parallel=" << parallel;

        // The hosted network's statistics tree matches the in-process
        // network's row for row, bit for bit.
        std::vector<std::tuple<std::string, std::string, double>>
            net_stats;
        for (const ipc::StatRow &row :
             sys.remoteNetwork()->fetchRemoteStats())
            net_stats.emplace_back(row.path, row.sub, row.value);
        ASSERT_EQ(net_stats.size(), ref_net_stats.size());
        for (std::size_t k = 0; k < net_stats.size(); ++k)
            EXPECT_EQ(net_stats[k], ref_net_stats[k])
                << "parallel=" << parallel << " stat "
                << std::get<0>(ref_net_stats[k]);
    }
}

TEST_F(RemoteCosim, ServerKillDegradesToTunedAbstract)
{
    Config cfg;
    cfg.set("health.recovery_quanta", 0); // stay degraded once tripped
    FullSystemOptions o = smallOptions(true);
    o.health = HealthOptions::fromConfig(cfg);
    FullSystem sys(cfg, o);

    // Kill the server under the live session: the first quantum that
    // needs it raises a Transport SimError inside the bridge, which
    // quarantines the backend and finishes the run on tuned-abstract
    // estimates — completion, not a hang.
    stopServer();
    Tick finish = sys.run(4000000);
    EXPECT_TRUE(sys.allCoresDone());
    EXPECT_GT(finish, 0u);
    ASSERT_NE(sys.bridge().health(), nullptr);
    EXPECT_GE(sys.bridge().health()->transportTrips.value(), 1.0);
    EXPECT_GE(sys.bridge().health()->degradations.value(), 1.0);
    EXPECT_EQ(sys.bridge().healthState(),
              QuantumBridge::HealthState::Degraded);
}

TEST_F(RemoteCosim, CrossProcessCheckpointResumesIdentically)
{
    // Uninterrupted reference over the remote backend.
    Tick ref_finish = 0;
    std::uint64_t ref_delivered = 0;
    double ref_latency = 0.0;
    {
        FullSystem ref(Config(), smallOptions(true));
        ref_finish = ref.run(4000000);
        ASSERT_TRUE(ref.allCoresDone());
        ref_delivered = ref.packetsDelivered();
        ref_latency = ref.meanPacketLatency();
    }

    // Interrupted run: checkpoint mid-flight (client + paired server
    // image over the live session), tear the whole client down, then
    // resume in a fresh FullSystem and finish.
    std::string image;
    {
        FullSystem sys(Config(), smallOptions(true));
        sys.run(ref_finish / 2); // stop mid-run at the tick limit
        ASSERT_FALSE(sys.allCoresDone());
        std::ostringstream os;
        sys.saveTo(os);
        image = os.str();
    }

    FullSystem resumed(Config(), smallOptions(true));
    std::string why;
    ASSERT_TRUE(resumed.restoreFromBytes(image, &why)) << why;
    Tick finish = resumed.run(4000000);
    ASSERT_TRUE(resumed.allCoresDone());

    EXPECT_EQ(finish, ref_finish);
    EXPECT_EQ(resumed.packetsDelivered(), ref_delivered);
    EXPECT_DOUBLE_EQ(resumed.meanPacketLatency(), ref_latency);
}

TEST_F(RemoteCosim, BackendMismatchedCheckpointIsRejected)
{
    std::string image;
    {
        FullSystem sys(Config(), smallOptions(true));
        sys.run(20000);
        std::ostringstream os;
        sys.saveTo(os);
        image = os.str();
    }
    // A checkpoint taken with the remote backend must not restore
    // into an in-process system (and vice versa): the archives carry
    // different network sections.
    FullSystem inproc(Config(), smallOptions(false));
    std::string why;
    EXPECT_FALSE(inproc.restoreFromBytes(image, &why));
    EXPECT_NE(why.find("network backend"), std::string::npos) << why;
}

} // namespace
