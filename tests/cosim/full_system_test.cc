/**
 * @file
 * Tests for the FullSystem assembly in every mode.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include "cosim/full_system.hh"
#include "sim/logging.hh"

namespace
{

using namespace rasim;
using namespace rasim::cosim;

FullSystemOptions
smallOptions(Mode mode, const std::string &app = "lu",
             std::uint64_t ops = 60)
{
    FullSystemOptions o;
    o.mode = mode;
    o.app = app;
    o.ops_per_core = ops;
    o.quantum = 64;
    o.noc.columns = 4;
    o.noc.rows = 4;
    o.mem.l1_sets = 16;
    return o;
}

TEST(FullSystem, ModeNamesRoundTrip)
{
    for (const char *name :
         {"abstract", "tuned", "cosim", "cosim-gpu", "monolithic"}) {
        EXPECT_STREQ(toString(modeFromName(name)), name);
    }
    EXPECT_SIM_ERROR(modeFromName("bogus"), "unknown mode");
}

TEST(FullSystem, OptionsFromConfig)
{
    Config cfg;
    cfg.set("system.mode", std::string("monolithic"));
    cfg.set("system.app", std::string("radix"));
    cfg.set("system.quantum", 128);
    cfg.set("noc.columns", 4);
    cfg.set("noc.rows", 2);
    auto o = FullSystemOptions::fromConfig(cfg);
    EXPECT_EQ(o.mode, Mode::Monolithic);
    EXPECT_EQ(o.app, "radix");
    EXPECT_EQ(o.quantum, 128u);
    EXPECT_EQ(o.noc.columns, 4);
}

class FullSystemModes : public testing::TestWithParam<Mode>
{
};

TEST_P(FullSystemModes, RunsToCompletion)
{
    FullSystem sys(Config(), smallOptions(GetParam()));
    Tick finish = sys.run(4000000);
    EXPECT_TRUE(sys.allCoresDone());
    EXPECT_GT(finish, 0u);
    EXPECT_GT(sys.packetsDelivered(), 0u);
    EXPECT_GT(sys.meanPacketLatency(), 0.0);
    // Every core issued its budget.
    for (std::size_t i = 0; i < sys.numCores(); ++i)
        EXPECT_DOUBLE_EQ(sys.core(i).opsIssued.value(), 60.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, FullSystemModes,
    testing::Values(Mode::Abstract, Mode::TunedAbstract,
                    Mode::CosimCycle, Mode::CosimGpu, Mode::Monolithic),
    [](const testing::TestParamInfo<Mode> &info) {
        std::string n = toString(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(FullSystem, MisspelledConfigKeyWarns)
{
    // A typo'd key is never read by any consumer, so assembling the
    // system flags it instead of silently ignoring it.
    Config cfg;
    cfg.set("noc.colums", 4);
    auto before = warnCount();
    FullSystem sys(cfg, smallOptions(Mode::Abstract));
    EXPECT_EQ(warnCount() - before, 1u);
}

TEST(FullSystem, WellFormedConfigDoesNotWarn)
{
    Config cfg;
    cfg.set("system.mode", std::string("abstract"));
    cfg.set("noc.columns", 4);
    cfg.set("noc.rows", 4);
    auto o = FullSystemOptions::fromConfig(cfg);
    o.app = "lu";
    o.ops_per_core = 60;
    o.mem.l1_sets = 16;
    auto before = warnCount();
    FullSystem sys(cfg, o);
    EXPECT_EQ(warnCount() - before, 0u);
}

TEST(FullSystem, MonolithicDeterministic)
{
    auto run = [] {
        FullSystem sys(Config(), smallOptions(Mode::Monolithic));
        return sys.run(4000000);
    };
    Tick a = run();
    Tick b = run();
    EXPECT_EQ(a, b);
}

TEST(FullSystem, CosimGpuDeterministic)
{
    auto run = [] {
        FullSystem sys(Config(), smallOptions(Mode::CosimGpu));
        return sys.run(4000000);
    };
    EXPECT_EQ(run(), run());
}

TEST(FullSystem, FeedbackFillsBridgeTable)
{
    FullSystem sys(Config(), smallOptions(Mode::CosimCycle));
    sys.run(4000000);
    EXPECT_GT(sys.bridge().table().observations(), 0u);
}

TEST(FullSystem, BackendAccessorsMatchMode)
{
    FullSystem cyc(Config(), smallOptions(Mode::CosimCycle));
    EXPECT_NE(cyc.cycleNetwork(), nullptr);
    EXPECT_EQ(cyc.abstractNetwork(), nullptr);
    FullSystem abs(Config(), smallOptions(Mode::Abstract));
    EXPECT_EQ(abs.cycleNetwork(), nullptr);
    EXPECT_NE(abs.abstractNetwork(), nullptr);
}

TEST(FullSystem, WorkloadsProduceDifferentTraffic)
{
    // The presets must stress the protocol differently: write-heavy
    // hotspotting (radix) causes far more invalidations than
    // read-mostly shared data (raytrace).
    FullSystem a(Config(), smallOptions(Mode::Monolithic, "radix"));
    FullSystem b(Config(), smallOptions(Mode::Monolithic, "raytrace"));
    a.run(4000000);
    b.run(4000000);
    auto invs = [](FullSystem &sys) {
        double total = 0;
        for (NodeId n = 0; n < 16; ++n)
            total += sys.memory().directory(n).invalidationsSent.value();
        return total;
    };
    EXPECT_GT(invs(a), 2.0 * invs(b));
}

} // namespace
