/**
 * @file
 * Allocation regression test for the hot path: once the coupled system
 * is past warm-up, the packet pool must not grow a slab, no registered
 * pool may grow, and the event queue must not mint new lambda events —
 * steady-state traffic runs entirely on recycled storage.
 */

#include <gtest/gtest.h>

#include "cosim/full_system.hh"
#include "noc/packet.hh"
#include "sim/pool.hh"

namespace
{

using namespace rasim;
using namespace rasim::cosim;

FullSystemOptions
trafficOptions(Mode mode)
{
    FullSystemOptions o;
    o.mode = mode;
    o.app = "lu";
    // A budget far beyond the tick limits below, so traffic never
    // drains and both run() calls observe the same steady state.
    o.ops_per_core = 1000000;
    o.quantum = 64;
    o.noc.columns = 4;
    o.noc.rows = 4;
    o.mem.l1_sets = 16;
    return o;
}

class SteadyState : public testing::TestWithParam<Mode>
{
};

TEST_P(SteadyState, ZeroPoolGrowthAfterWarmup)
{
    FullSystem sys(Config(), trafficOptions(GetParam()));

    // Warm-up: reach the working set (pools grow freely here).
    sys.run(40000);
    ASSERT_FALSE(sys.allCoresDone());
    PoolStats warm_pkt = noc::packetPool().stats();
    std::uint64_t warm_slabs = poolTotalSlabs();
    std::size_t warm_lambdas =
        sys.simulation().eventq().lambdaEventsAllocated();
    ASSERT_GT(warm_pkt.total_allocated, 0u);

    // Steady state: several hundred more quanta of traffic.
    sys.run(80000);
    ASSERT_FALSE(sys.allCoresDone());
    PoolStats now_pkt = noc::packetPool().stats();

    // Traffic actually flowed...
    EXPECT_GT(now_pkt.total_allocated, warm_pkt.total_allocated);
    // ...but no pool gained a slab: every packet and message ran on
    // recycled slots.
    EXPECT_EQ(now_pkt.slabs, warm_pkt.slabs);
    EXPECT_EQ(poolTotalSlabs(), warm_slabs);
    // The lambda-event store is a high-water mark of concurrently
    // scheduled lambdas: it only grows when a burst exceeds every
    // earlier burst, which becomes rarer as the run ages but is not
    // strictly zero. Bound it tightly; tens of thousands of lambdas
    // were scheduled in this window.
    EXPECT_LE(sys.simulation().eventq().lambdaEventsAllocated(),
              warm_lambdas + 8);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SteadyState,
    testing::Values(Mode::Abstract, Mode::CosimCycle, Mode::CosimGpu),
    [](const testing::TestParamInfo<Mode> &info) {
        std::string n = toString(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
