/**
 * @file
 * Acceptance tests for the co-simulation health subsystem: every guard
 * fires under its matching injected fault, a tripped bridge degrades
 * to tuned-abstract service and completes the run, recovery re-engages
 * the backend (with exponential backoff on failure), the degradation
 * events land in the stats dump, and a healthy monitored run is
 * bit-identical to an unmonitored one.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "cosim/bridge.hh"
#include "cosim/full_system.hh"
#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "sim/fault_injector.hh"
#include "sim/simulation.hh"
#include "stats/output.hh"

namespace
{

using namespace rasim;
using namespace rasim::cosim;

/** Bridge + fault injector + a backend of choice. */
template <typename Backend>
struct FaultyBridgeFixture
{
    FaultyBridgeFixture(QuantumBridge::Options opts, FaultOptions faults,
                        noc::NocParams p = noc::NocParams())
        : net(sim, "noc", p), inj(net, faults),
          bridge(sim, "bridge", inj, p, opts)
    {
        bridge.setDeliveryHandler(
            [this](const noc::PacketPtr &pkt) {
                delivered.push_back(pkt);
            });
    }

    noc::PacketPtr
    send(NodeId src, NodeId dst, Tick when)
    {
        auto pkt = noc::makePacket(next_id++, src, dst,
                                   noc::MsgClass::Request, 8, when);
        bridge.inject(pkt);
        return pkt;
    }

    Simulation sim;
    Backend net;
    FaultInjector inj;
    QuantumBridge bridge;
    std::vector<noc::PacketPtr> delivered;
    PacketId next_id = 1;
};

QuantumBridge::Options
healthOpts(QuantumBridge::Coupling coupling, Tick quantum = 32)
{
    QuantumBridge::Options o;
    o.quantum = quantum;
    o.coupling = coupling;
    o.health.checkpoint_quanta = 1;
    o.health.recovery_quanta = 2;
    o.health.probation_quanta = 2;
    return o;
}

TEST(Health, ConservationGuardTripsOnDroppedPackets)
{
    FaultOptions fo;
    fo.drop_every = 2;
    auto bo = healthOpts(QuantumBridge::Coupling::Conservative);
    bo.health.recovery_quanta = 0; // stay degraded once tripped
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    for (int i = 0; i < 10; ++i)
        f.send(0, 9, static_cast<Tick>(i));
    f.bridge.advanceCoupled(2000);
    ASSERT_NE(f.bridge.health(), nullptr);
    EXPECT_GE(f.bridge.health()->conservationTrips.value(), 1.0);
    EXPECT_EQ(f.bridge.healthState(),
              QuantumBridge::HealthState::Degraded);
    // Degradation is graceful: every injected packet still reached the
    // system — the dropped ones served from estimates.
    EXPECT_EQ(f.delivered.size(), 10u);
    EXPECT_GE(f.bridge.health()->syntheticDeliveries.value(), 1.0);
}

TEST(Health, WatchdogDetectsDeflectionLivelockAndRunCompletes)
{
    // The ISSUE acceptance scenario: a wedged ejection port in the
    // deflection network livelocks the detailed backend; the watchdog
    // detects it within its window, the bridge falls back to the
    // tuned-abstract table, and the run completes.
    FaultOptions fo;
    fo.stall_node = 9; // flits to node 9 circulate forever
    auto bo = healthOpts(QuantumBridge::Coupling::Reciprocal, 64);
    bo.health.watchdog_cycles = 256;
    bo.health.recovery_quanta = 0;
    FaultyBridgeFixture<noc::DeflectionNetwork> f(bo, fo);
    for (int i = 0; i < 40; ++i)
        f.send(0, 9, static_cast<Tick>(i * 8));
    f.bridge.advanceCoupled(4000);
    EXPECT_GE(f.bridge.health()->deadlockTrips.value(), 1.0);
    EXPECT_EQ(f.bridge.healthState(),
              QuantumBridge::HealthState::Degraded);
    // Reciprocal coupling served every packet from the estimate at
    // injection time; the livelock cost nothing but fidelity.
    EXPECT_EQ(f.delivered.size(), 40u);
    // Degradation and its cause are visible in the stats dump.
    std::ostringstream os;
    stats::dumpText(os, f.sim.statsRoot());
    EXPECT_NE(os.str().find("health.deadlock_trips"), std::string::npos);
    EXPECT_NE(os.str().find("health.degradations"), std::string::npos);
    EXPECT_GE(f.bridge.health()->degradedQuanta.value(), 1.0);
}

TEST(Health, DivergenceGuardRollsBackPoisonedTable)
{
    FaultOptions fo;
    fo.poison_every = 1;
    fo.poison_offset = 100000; // wreck every feedback sample
    auto bo = healthOpts(QuantumBridge::Coupling::Reciprocal);
    bo.health.divergence_factor = 4.0;
    bo.health.recovery_quanta = 0;
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    for (int i = 0; i < 20; ++i)
        f.send(0, 9, static_cast<Tick>(i * 4));
    f.bridge.advanceCoupled(2000);
    EXPECT_GE(f.bridge.health()->divergenceTrips.value(), 1.0);
    EXPECT_EQ(f.bridge.healthState(),
              QuantumBridge::HealthState::Degraded);
    // The poisoned samples were rolled back: estimates come from the
    // last-good checkpoint, near zero-load, not from the 100k poison.
    EXPECT_LT(f.bridge.table().estimate(0, 2, 1), 1000.0);
}

TEST(Health, TimeoutGuardPreemptsHungBackend)
{
    FaultOptions fo;
    fo.hang_ms = 10000; // each quantum would burn ten seconds
    auto bo = healthOpts(QuantumBridge::Coupling::Reciprocal, 64);
    bo.health.worker_timeout_ms = 25.0;
    bo.health.recovery_quanta = 0;
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    f.send(0, 9, 0);
    f.bridge.advanceCoupled(640);
    EXPECT_GE(f.bridge.health()->timeoutTrips.value(), 1.0);
    EXPECT_EQ(f.bridge.healthState(),
              QuantumBridge::HealthState::Degraded);
    // The hung worker was cooperatively preempted, not abandoned.
    EXPECT_GE(f.inj.aborted(), 1u);
    EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(Health, RecoveryReengagesBackendAfterCooldown)
{
    // Stall released at tick 300: the backend is sick long enough to
    // trip the watchdog, then heals, so probation succeeds.
    FaultOptions fo;
    fo.stall_node = 9;
    fo.stall_from = 0;
    fo.stall_until = 300;
    auto bo = healthOpts(QuantumBridge::Coupling::Reciprocal, 32);
    bo.health.watchdog_cycles = 64;
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    for (int i = 0; i < 30; ++i)
        f.send(0, 9, static_cast<Tick>(i * 16));
    f.bridge.advanceCoupled(3000);
    EXPECT_GE(f.bridge.health()->deadlockTrips.value(), 1.0);
    EXPECT_GE(f.bridge.health()->recoveries.value(), 1.0);
    EXPECT_EQ(f.bridge.healthState(),
              QuantumBridge::HealthState::Healthy);
    // Both the degradation and the recovery are stats events.
    std::ostringstream os;
    stats::dumpText(os, f.sim.statsRoot());
    EXPECT_NE(os.str().find("health.recoveries"), std::string::npos);
}

TEST(Health, FailedRecoveryBacksOffExponentially)
{
    // Drops never stop, so every probation re-trips conservation and
    // the cooldown doubles (capped) each time.
    FaultOptions fo;
    fo.drop_every = 1; // drop everything
    auto bo = healthOpts(QuantumBridge::Coupling::Conservative, 32);
    bo.health.recovery_quanta = 1;
    bo.health.probation_quanta = 4;
    bo.health.max_backoff = 8;
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    // A steady stream injected from inside the event simulation keeps
    // traffic flowing through every probation window, so each
    // re-engagement of the (still 100% lossy) backend re-trips.
    for (int i = 0; i < 200; ++i) {
        Tick when = static_cast<Tick>(i * 16);
        f.sim.eventq().scheduleLambda(when,
                                      [&f, when] { f.send(0, 9, when); });
    }
    f.bridge.advanceCoupled(6400);
    EXPECT_GE(f.bridge.health()->recoveryFailures.value(), 1.0);
    EXPECT_GE(f.bridge.health()->degradations.value(), 2.0);
    // Every packet reached the system despite a 100% drop fault.
    EXPECT_EQ(f.delivered.size(), 200u);
}

TEST(Health, ObserverSeesBackendDeliveriesExactlyOnce)
{
    // A freeze window wedges the backend mid-run; the quarantine
    // serves the stuck packets from estimates. When the backend
    // re-engages and finally delivers them for real, the observer
    // sees each exactly once and the system is not paid twice.
    FaultOptions fo;
    fo.freeze_from = 1;
    fo.freeze_until = 500;
    auto bo = healthOpts(QuantumBridge::Coupling::Conservative, 32);
    bo.health.watchdog_cycles = 64;
    bo.health.recovery_quanta = 2;
    bo.health.probation_quanta = 1;
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    std::map<PacketId, int> observed;
    f.bridge.setDeliveryObserver([&](const noc::PacketPtr &pkt) {
        ++observed[pkt->id];
    });
    for (int i = 0; i < 12; ++i)
        f.send(0, 9, static_cast<Tick>(i * 2));
    f.bridge.advanceCoupled(4000);
    // The system received every packet exactly once.
    ASSERT_EQ(f.delivered.size(), 12u);
    std::map<PacketId, int> system_seen;
    for (const auto &pkt : f.delivered)
        ++system_seen[pkt->id];
    for (const auto &[id, n] : system_seen)
        EXPECT_EQ(n, 1) << "packet " << id << " delivered twice";
    // The observer saw only real backend deliveries, each at most
    // once (synthetic deliveries are invisible to it).
    for (const auto &[id, n] : observed)
        EXPECT_EQ(n, 1) << "packet " << id << " observed twice";
    EXPECT_GE(f.bridge.health()->syntheticDeliveries.value(), 1.0);
}

TEST(Health, DistributionsStayMeaningfulUnderDelayFaults)
{
    // Satellite: estimateError / deliverySlack under injected faults.
    FaultOptions fo;
    fo.delay_every = 3;
    fo.delay_cycles = 64;
    auto bo = healthOpts(QuantumBridge::Coupling::Reciprocal, 32);
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    for (int i = 0; i < 60; ++i)
        f.send(0, 9, static_cast<Tick>(i * 4));
    f.bridge.advanceCoupled(3000);
    // All feedback flowed: every clone eventually delivered.
    EXPECT_EQ(f.bridge.estimateError.count(), 60u);
    EXPECT_EQ(f.bridge.deliverySlack.count(), 60u);
    // Delayed clones produce visibly larger (more negative) estimate
    // errors than the prompt ones — the fault shows in the tails.
    EXPECT_LE(f.bridge.estimateError.minValue(), -50.0);
}

TEST(Health, DegradeOffTurnsTripsIntoExceptions)
{
    FaultOptions fo;
    fo.drop_every = 1;
    auto bo = healthOpts(QuantumBridge::Coupling::Conservative);
    bo.health.degrade = false;
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    for (int i = 0; i < 4; ++i)
        f.send(0, 9, static_cast<Tick>(i));
    try {
        f.bridge.advanceCoupled(2000);
        FAIL() << "conservation trip did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Conservation);
    }
}

TEST(Health, MonitoringOffMeansNoGuards)
{
    FaultOptions fo;
    fo.drop_every = 2;
    QuantumBridge::Options bo;
    bo.quantum = 32;
    bo.health.enabled = false;
    FaultyBridgeFixture<noc::CycleNetwork> f(bo, fo);
    for (int i = 0; i < 10; ++i)
        f.send(0, 9, static_cast<Tick>(i));
    f.bridge.advanceCoupled(2000);
    EXPECT_EQ(f.bridge.health(), nullptr);
    // Nobody notices the loss: only the surviving packets arrive.
    EXPECT_EQ(f.delivered.size(), 5u);
    EXPECT_EQ(f.bridge.healthState(),
              QuantumBridge::HealthState::Healthy);
}

TEST(Health, HealthyMonitoredRunIsBitIdenticalToUnmonitored)
{
    auto run = [](bool monitored) {
        QuantumBridge::Options o;
        o.quantum = 64;
        o.coupling = QuantumBridge::Coupling::Conservative;
        o.health.enabled = monitored;
        FaultyBridgeFixture<noc::CycleNetwork> f(o, FaultOptions{});
        for (int i = 0; i < 50; ++i)
            f.send(static_cast<NodeId>(i % 64),
                   static_cast<NodeId>((i * 13 + 1) % 64),
                   static_cast<Tick>(i * 3));
        f.bridge.advanceCoupled(2000);
        std::vector<std::pair<PacketId, Tick>> out;
        for (const auto &pkt : f.delivered)
            out.emplace_back(pkt->id, pkt->deliver_tick);
        return out;
    };
    EXPECT_EQ(run(true), run(false));
}

// ---------------------------------------------------------------------
// Overlapped-worker exception safety (satellite): a backend that
// throws mid-quantum on the worker thread must not leak the thread,
// kill the process, or lose the deliveries made before the failure.

/** Minimal backend: delivers after a fixed delay; throws or panics on
 *  command inside advanceTo(). */
class FlakyBackend : public noc::NetworkModel
{
  public:
    void
    inject(const noc::PacketPtr &pkt) override
    {
        pkt->enter_tick = pkt->inject_tick;
        pkt->deliver_tick = pkt->inject_tick + 10;
        pkt->hops = 1;
        in_flight_.push_back(pkt);
    }

    void
    advanceTo(Tick t) override
    {
        if (panic_at_ > 0 && t >= panic_at_) {
            panic_at_ = 0;
            panic("flaky backend expired at tick ", t);
        }
        if (throw_at_ > 0 && t >= throw_at_) {
            throw_at_ = 0;
            throw std::runtime_error("flaky backend raw throw");
        }
        time_ = t;
        auto due = [t](const noc::PacketPtr &p) {
            return p->deliver_tick <= t;
        };
        for (const auto &pkt : in_flight_)
            if (due(pkt) && handler_)
                handler_(pkt);
        in_flight_.erase(std::remove_if(in_flight_.begin(),
                                        in_flight_.end(), due),
                         in_flight_.end());
    }

    void
    setDeliveryHandler(DeliveryHandler handler) override
    {
        handler_ = std::move(handler);
    }

    Tick curTime() const override { return time_; }
    bool idle() const override { return in_flight_.empty(); }
    std::size_t numNodes() const override { return 64; }

    std::optional<Accounting>
    accounting() const override
    {
        return std::nullopt; // unauditable on purpose
    }

    Tick panic_at_ = 0;
    Tick throw_at_ = 0;

  private:
    DeliveryHandler handler_;
    std::vector<noc::PacketPtr> in_flight_;
    Tick time_ = 0;
};

TEST(Health, OverlappedWorkerPanicQuarantinesInsteadOfAborting)
{
    Simulation sim;
    noc::NocParams p;
    FlakyBackend net;
    net.panic_at_ = 96;
    QuantumBridge::Options o;
    o.quantum = 32;
    o.overlap = true;
    o.health.recovery_quanta = 0;
    QuantumBridge bridge(sim, "bridge", net, p, o);
    std::vector<noc::PacketPtr> delivered;
    bridge.setDeliveryHandler([&](const noc::PacketPtr &pkt) {
        delivered.push_back(pkt);
    });
    for (int i = 0; i < 6; ++i) {
        auto pkt = noc::makePacket(static_cast<PacketId>(i + 1), 0, 1,
                                   noc::MsgClass::Request, 8,
                                   static_cast<Tick>(i));
        bridge.inject(pkt);
    }
    // The worker's panic becomes a SimError, the bridge quarantines
    // the backend, and the run completes degraded — in process.
    bridge.advanceCoupled(640);
    EXPECT_EQ(bridge.healthState(), QuantumBridge::HealthState::Degraded);
    EXPECT_GE(bridge.health()->internalTrips.value(), 1.0);
    // Deliveries made before the failure were preserved and every
    // remaining packet was served from estimates.
    EXPECT_EQ(delivered.size(), 6u);
}

TEST(Health, OverlappedWorkerThrowUnmonitoredPropagatesCleanly)
{
    // With the monitor off the exception must still join the worker
    // and surface on the calling thread (no std::terminate, no leaked
    // thread), leaving the bridge destructible.
    Simulation sim;
    noc::NocParams p;
    FlakyBackend net;
    net.throw_at_ = 64;
    QuantumBridge::Options o;
    o.quantum = 32;
    o.overlap = true;
    o.health.enabled = false;
    {
        QuantumBridge bridge(sim, "bridge", net, p, o);
        auto pkt = noc::makePacket(1, 0, 1, noc::MsgClass::Request, 8, 0);
        bridge.inject(pkt);
        EXPECT_THROW(bridge.advanceCoupled(640), std::runtime_error);
    } // ~QuantumBridge after a mid-overlap throw: no leak, no crash
}

// ---------------------------------------------------------------------
// Full-system integration: fault.* keys interpose the injector, the
// run completes degraded, and the health events reach the stats dump.

TEST(Health, TimeoutScaleLoosensTheWallClockBudget)
{
    Simulation sim;
    HealthOptions ho;
    ho.worker_timeout_ms = 10.0;
    HealthMonitor tight(sim, "tight", ho, nullptr);
    HealthMonitor::Snapshot s;
    s.worker_ms = 15.0; // over a 10 ms budget
    auto trip = tight.checkBoundary(s);
    ASSERT_TRUE(trip.has_value());
    EXPECT_EQ(trip->kind, ErrorKind::Timeout);

    // The same overrun fits inside a 2x-scaled budget (slow host).
    ho.timeout_scale = 2.0;
    HealthMonitor loose(sim, "loose", ho, nullptr);
    EXPECT_FALSE(loose.checkBoundary(s).has_value());

    Config cfg;
    cfg.set("health.timeout_scale", 3.5);
    EXPECT_DOUBLE_EQ(HealthOptions::fromConfig(cfg).timeout_scale, 3.5);
    Config bad;
    bad.set("health.timeout_scale", 0.0);
    EXPECT_SIM_ERROR(HealthOptions::fromConfig(bad),
                     "timeout_scale must be positive");
}

TEST(Health, FullSystemSurvivesInjectedFaults)
{
    Config cfg;
    cfg.set("fault.enabled", true);
    cfg.set("fault.drop_every", 3);
    cfg.set("health.recovery_quanta", 0);
    FullSystemOptions o;
    o.mode = Mode::CosimCycle;
    o.app = "lu";
    o.ops_per_core = 40;
    o.quantum = 64;
    o.noc.columns = 4;
    o.noc.rows = 4;
    o.mem.l1_sets = 16;
    o.health = HealthOptions::fromConfig(cfg);
    o.fault = FaultOptions::fromConfig(cfg);
    FullSystem sys(cfg, o);
    ASSERT_NE(sys.faultInjector(), nullptr);
    Tick finish = sys.run(4000000);
    EXPECT_TRUE(sys.allCoresDone());
    EXPECT_GT(finish, 0u);
    EXPECT_GE(sys.bridge().health()->conservationTrips.value(), 1.0);
    EXPECT_EQ(sys.bridge().healthState(),
              QuantumBridge::HealthState::Degraded);
    std::ostringstream os;
    stats::dumpText(os, sys.simulation().statsRoot());
    EXPECT_NE(os.str().find("health.degradations"), std::string::npos);
}

} // namespace
