/**
 * @file
 * Full-system tests contrasting the two bridge couplings and the
 * engine configurations — the integration-level properties E5/E4
 * build on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cosim/full_system.hh"
#include "sim/logging.hh"

namespace
{

using namespace rasim;
using namespace rasim::cosim;

FullSystemOptions
opts(Mode mode, Tick quantum, bool conservative)
{
    FullSystemOptions o;
    o.mode = mode;
    o.app = "fft";
    o.ops_per_core = 80;
    o.quantum = quantum;
    o.conservative = conservative;
    o.noc.columns = 4;
    o.noc.rows = 4;
    o.mem.l1_sets = 16;
    return o;
}

double
relErr(double x, double ref)
{
    return std::abs(x - ref) / ref;
}

TEST(Coupling, ConservativeQuantumOneMatchesMonolithic)
{
    FullSystem mono(Config(), opts(Mode::Monolithic, 1, false));
    Tick a = mono.run();
    FullSystem cons(Config(), opts(Mode::CosimCycle, 1, true));
    Tick b = cons.run();
    EXPECT_EQ(a, b);
    EXPECT_DOUBLE_EQ(mono.meanPacketLatency(),
                     cons.meanPacketLatency());
}

TEST(Coupling, ConservativeDegradesWithQuantum)
{
    FullSystem ref(Config(), opts(Mode::Monolithic, 1, false));
    double ref_rt = static_cast<double>(ref.run());
    FullSystem small_q(Config(), opts(Mode::CosimCycle, 16, true));
    double rt16 = static_cast<double>(small_q.run());
    FullSystem big_q(Config(), opts(Mode::CosimCycle, 512, true));
    double rt512 = static_cast<double>(big_q.run());
    EXPECT_GT(relErr(rt512, ref_rt), relErr(rt16, ref_rt));
    EXPECT_GT(rt512, 2.0 * ref_rt); // RTT rounding blows runtime up
}

TEST(Coupling, ReciprocalHoldsAccuracyAtHugeQuantum)
{
    FullSystem ref(Config(), opts(Mode::Monolithic, 1, false));
    double ref_rt = static_cast<double>(ref.run());
    double ref_lat = ref.meanPacketLatency();
    FullSystem rec(Config(), opts(Mode::CosimCycle, 1024, false));
    double rt = static_cast<double>(rec.run());
    EXPECT_LT(relErr(rt, ref_rt), 0.1);
    EXPECT_LT(relErr(rec.meanPacketLatency(), ref_lat), 0.1);
}

TEST(Coupling, ReciprocalSystemNeverWaitsOnDetailedModel)
{
    // With reciprocal coupling the estimate answers immediately, so
    // boundary slack never shows up in system-visible latencies even
    // at large quanta: the bridge's estimate-error stays small.
    FullSystem rec(Config(), opts(Mode::CosimCycle, 512, false));
    rec.run();
    EXPECT_GT(rec.bridge().estimateError.count(), 0u);
    EXPECT_LT(std::abs(rec.bridge().estimateError.mean()), 5.0);
}

TEST(Coupling, EngineWorkerCountDoesNotChangeResults)
{
    Tick base = 0;
    for (int workers : {1, 2, 4}) {
        FullSystemOptions o = opts(Mode::CosimGpu, 64, false);
        o.engine_workers = workers;
        FullSystem sys(Config(), o);
        Tick rt = sys.run();
        if (!base)
            base = rt;
        EXPECT_EQ(rt, base) << "workers=" << workers;
    }
}

TEST(Coupling, OverlappedPoolRunsAreDeterministic)
{
    // Reciprocal + overlap coupling with the pool engine is the full
    // parallel configuration; the determinism contract demands that
    // repeated runs with the same seed — and runs with different
    // worker counts — agree bit for bit on the feedback-side
    // distributions and the tuned latency-table state.
    auto run = [](int workers) {
        FullSystemOptions o = opts(Mode::CosimGpu, 64, false);
        o.engine_workers = workers;
        FullSystem sys(Config(), o);
        Tick rt = sys.run();
        std::ostringstream table;
        sys.bridge().table().save(table);
        return std::make_tuple(rt, sys.packetsDelivered(),
                               sys.bridge().estimateError.values(),
                               sys.bridge().deliverySlack.values(),
                               table.str());
    };

    auto ref = run(2);
    EXPECT_GT(std::get<1>(ref), 0u);
    // Same seed, same worker count: bit-identical reruns.
    EXPECT_EQ(run(2), ref);
    // Worker count is a pure execution-placement choice.
    EXPECT_EQ(run(1), ref);
    EXPECT_EQ(run(8), ref);
}

TEST(Coupling, OverlapAddsBoundedError)
{
    FullSystem ref(Config(), opts(Mode::Monolithic, 1, false));
    ref.run();
    double ref_lat = ref.meanPacketLatency();
    FullSystem gpu(Config(), opts(Mode::CosimGpu, 128, false));
    gpu.run();
    // Overlap batches the clone stream at boundaries, which inflates
    // the detailed model's measured latency somewhat on this tiny
    // (4x4, ~30-quanta) run — bounded, not a blow-up.
    EXPECT_LT(relErr(gpu.meanPacketLatency(), ref_lat), 0.4);
}

TEST(Coupling, TickLimitWarnsAndReturns)
{
    FullSystem sys(Config(), opts(Mode::CosimCycle, 64, false));
    auto before = warnCount();
    sys.run(128); // far too short to finish
    EXPECT_FALSE(sys.allCoresDone());
    EXPECT_GT(warnCount(), before);
}

TEST(Coupling, PairGranularityConfigWorks)
{
    Config cfg;
    cfg.set("abstract.granularity", std::string("pair"));
    FullSystem sys(cfg, opts(Mode::CosimCycle, 128, false));
    sys.run();
    EXPECT_TRUE(sys.allCoresDone());
    EXPECT_EQ(sys.bridge().table().granularity(),
              abstractnet::LatencyTable::Granularity::Pair);
    EXPECT_GT(sys.bridge().table().observations(), 0u);
}

} // namespace
