/**
 * @file
 * Crash-safe checkpoint/restore of the full co-simulation, proven by
 * differential runs: simulating N quanta straight must be
 * bit-identical to simulating k quanta, archiving the whole system,
 * restoring into a freshly constructed process object and simulating
 * the remaining N-k quanta — same delivered-packet trace, same finish
 * tick, same rendered statistics, same tuned latency table — across
 * couplings, engines and with deterministic fault injection active.
 * Plus the crash-safety half: atomic on-disk images, rotation, and
 * fallback past corrupt or mismatched images at boot.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/expect_error.hh"

#include "cosim/full_system.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace
{

using namespace rasim;
using namespace rasim::cosim;

constexpr Tick run_limit = 4000000;

/** One backend delivery seen by the bridge observer, every field a
 *  resumed run could disturb. */
struct Delivery
{
    PacketId id;
    Tick deliver_tick;
    Tick latency;
    std::uint32_t hops;
    std::uint64_t context;

    bool
    operator==(const Delivery &o) const
    {
        return id == o.id && deliver_tick == o.deliver_tick &&
               latency == o.latency && hops == o.hops &&
               context == o.context;
    }
};

void
snapshotStats(const stats::Group &g,
              std::vector<std::tuple<std::string, std::string, double>>
                  &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.emplace_back(g.path() + "." + s->name(), sub, v);
    for (const stats::Group *c : g.children())
        snapshotStats(*c, out);
}

struct Scenario
{
    std::string name;
    Mode mode = Mode::CosimCycle;
    bool conservative = false;
    bool parallel = false;
    bool drop = false;   ///< fault: drop every 9th packet
    bool delay = false;  ///< fault: delay every 5th packet
    bool poison = false; ///< fault: poison every 11th delivery
};

FullSystemOptions
scenarioOptions(const Scenario &s)
{
    FullSystemOptions o;
    o.mode = s.mode;
    o.app = "lu";
    o.ops_per_core = 60;
    o.quantum = 64;
    o.noc.columns = 4;
    o.noc.rows = 4;
    o.mem.l1_sets = 16;
    o.conservative = s.conservative;
    o.parallel = s.parallel;
    o.engine_workers = 2;
    // Wall-clock guards (worker_timeout_ms, fault.hang_*) are the one
    // thing outside the bit-identical contract; everything else runs.
    o.health.recovery_quanta = 4;
    o.health.probation_quanta = 2;
    o.health.checkpoint_quanta = 4;
    o.fault.enabled = s.drop || s.delay || s.poison;
    if (s.drop)
        o.fault.drop_every = 9;
    if (s.delay) {
        o.fault.delay_every = 5;
        o.fault.delay_cycles = 48;
    }
    if (s.poison)
        o.fault.poison_every = 11;
    return o;
}

struct Trace
{
    std::vector<Delivery> deliveries;
    std::vector<std::tuple<std::string, std::string, double>> stats;
    Tick finish = 0;
};

void
observe(FullSystem &sys, Trace &trace)
{
    sys.bridge().setDeliveryObserver([&trace](const noc::PacketPtr &p) {
        trace.deliveries.push_back({p->id, p->deliver_tick,
                                    p->latency(), p->hops, p->context});
    });
}

void
finishTrace(FullSystem &sys, Trace &trace)
{
    snapshotStats(sys.simulation().statsRoot(), trace.stats);
}

void
expectIdentical(const Trace &ref, const Trace &got)
{
    EXPECT_EQ(got.finish, ref.finish);
    ASSERT_EQ(got.deliveries.size(), ref.deliveries.size());
    for (std::size_t k = 0; k < ref.deliveries.size(); ++k)
        ASSERT_TRUE(got.deliveries[k] == ref.deliveries[k])
            << "delivery #" << k << " packet " << ref.deliveries[k].id;
    ASSERT_EQ(got.stats.size(), ref.stats.size());
    for (std::size_t k = 0; k < ref.stats.size(); ++k)
        ASSERT_EQ(got.stats[k], ref.stats[k])
            << "stat " << std::get<0>(ref.stats[k]) << "."
            << std::get<1>(ref.stats[k]);
}

class CheckpointDifferential : public testing::TestWithParam<Scenario>
{
};

TEST_P(CheckpointDifferential, ResumeIsBitIdentical)
{
    const FullSystemOptions opts = scenarioOptions(GetParam());

    // Reference: the whole run, uninterrupted. Kept alive so the
    // resumed system's tuned table can be compared field by field.
    FullSystem ref_sys(Config(), opts);
    Trace ref;
    observe(ref_sys, ref);
    ref.finish = ref_sys.run(run_limit);
    EXPECT_TRUE(ref_sys.allCoresDone());
    finishTrace(ref_sys, ref);
    // Run-loop boundaries the reference crossed (the bridge's own
    // quantum is 1 in the event-exact modes, so quantaRun() is the
    // wrong unit here).
    std::uint64_t total_quanta =
        ref_sys.simulation().curTick() / opts.quantum;
    ASSERT_GE(total_quanta, 4u);

    // Interrupted: k quanta, archive, throw the process state away.
    std::uint64_t k = total_quanta / 2;
    Trace resumed;
    std::string image;
    {
        FullSystem sys(Config(), opts);
        observe(sys, resumed);
        sys.run(k * opts.quantum);
        EXPECT_EQ(sys.simulation().curTick(), k * opts.quantum);
        EXPECT_FALSE(sys.allCoresDone());
        std::ostringstream os;
        sys.saveTo(os);
        image = os.str();
    }

    // Resumed: a fresh process object, state only from the archive.
    FullSystem sys(Config(), opts);
    observe(sys, resumed);
    std::string why;
    ASSERT_TRUE(sys.restoreFromBytes(image, &why)) << why;
    EXPECT_EQ(sys.simulation().curTick(), k * opts.quantum);
    resumed.finish = sys.run(run_limit);
    EXPECT_TRUE(sys.allCoresDone());
    finishTrace(sys, resumed);

    expectIdentical(ref, resumed);
    EXPECT_TRUE(
        sys.bridge().table().identicalTo(ref_sys.bridge().table()));
    EXPECT_EQ(sys.bridge().healthState(), ref_sys.bridge().healthState());
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, CheckpointDifferential,
    testing::Values(
        Scenario{"reciprocal_serial", Mode::CosimCycle, false, false,
                 false, false, false},
        Scenario{"conservative_serial", Mode::CosimCycle, true, false,
                 false, false, false},
        Scenario{"reciprocal_parallel_faults", Mode::CosimCycle, false,
                 true, false, true, true},
        Scenario{"conservative_degrades", Mode::CosimCycle, true, false,
                 true, false, false},
        Scenario{"overlapped_gpu_faults", Mode::CosimGpu, false, false,
                 false, true, false},
        Scenario{"monolithic", Mode::Monolithic, false, false, false,
                 false, false}),
    [](const testing::TestParamInfo<Scenario> &info) {
        return info.param.name;
    });

TEST(Checkpoint, RunsExactlyTheRequestedQuanta)
{
    FullSystemOptions opts = scenarioOptions({});
    FullSystem sys(Config(), opts);
    sys.run(3 * opts.quantum);
    EXPECT_EQ(sys.simulation().curTick(), 3 * opts.quantum);
}

TEST(Checkpoint, MismatchedConfigurationRejectedNonFatally)
{
    Scenario base{};
    FullSystemOptions opts = scenarioOptions(base);
    std::string image;
    {
        FullSystem sys(Config(), opts);
        sys.run(2 * opts.quantum);
        std::ostringstream os;
        sys.saveTo(os);
        image = os.str();
    }
    Scenario other = base;
    other.conservative = true;
    FullSystem sys(Config(), scenarioOptions(other));
    std::string why;
    EXPECT_FALSE(sys.restoreFromBytes(image, &why));
    EXPECT_NE(why.find("mismatch"), std::string::npos);
}

TEST(Checkpoint, QuarantinedBridgeRestoresQuarantined)
{
    // Dropped packets violate conservation, so the conservative run
    // degrades; the archived state machine must come back verbatim —
    // still quarantined, same cooldown trajectory.
    Scenario s{"", Mode::CosimCycle, true, false, true, false, false};
    FullSystemOptions opts = scenarioOptions(s);
    opts.health.recovery_quanta = 1000; // stay degraded for the test

    FullSystem sys(Config(), opts);
    sys.run(6 * opts.quantum);
    ASSERT_EQ(sys.bridge().healthState(),
              QuantumBridge::HealthState::Degraded);
    double degradations = sys.bridge().health()->degradations.value();
    std::ostringstream os;
    sys.saveTo(os);

    FullSystem restored(Config(), opts);
    std::string why;
    ASSERT_TRUE(restored.restoreFromBytes(os.str(), &why)) << why;
    EXPECT_EQ(restored.bridge().healthState(),
              QuantumBridge::HealthState::Degraded);
    EXPECT_EQ(restored.bridge().health()->degradations.value(),
              degradations);
    // The degraded bridge serves estimates from the last-good table;
    // the restored one must hold exactly the same tuned state.
    EXPECT_TRUE(
        restored.bridge().table().identicalTo(sys.bridge().table()));
    // And the resumed degraded run keeps serving the system.
    Tick a = restored.run(run_limit);
    Tick b = sys.run(run_limit);
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// On-disk crash safety: periodic images, rotation, corruption fallback
// ---------------------------------------------------------------------

namespace fs = std::filesystem;

std::vector<fs::path>
checkpointFiles(const fs::path &dir)
{
    std::vector<fs::path> out;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".ckpt")
            out.push_back(e.path());
    std::sort(out.begin(), out.end());
    return out;
}

class CheckpointDisk : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::path(testing::TempDir()) /
               ("rasim_ckpt_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    FullSystemOptions
    diskOptions(std::uint64_t interval, std::uint64_t keep)
    {
        FullSystemOptions o = scenarioOptions({});
        o.checkpoint.interval_quanta = interval;
        o.checkpoint.keep = keep;
        o.checkpoint.dir = dir_.string();
        return o;
    }

    fs::path dir_;
};

TEST_F(CheckpointDisk, PeriodicImagesRotateToKeep)
{
    FullSystemOptions opts = diskOptions(2, 3);
    FullSystem sys(Config(), opts);
    Tick finish = sys.run(run_limit);
    EXPECT_GT(finish, 0u);
    auto images = checkpointFiles(dir_);
    EXPECT_EQ(images.size(), 3u);
    // No torn temp files left behind by the atomic write protocol.
    for (const auto &e : fs::directory_iterator(dir_))
        EXPECT_NE(e.path().extension(), ".tmp");
}

TEST_F(CheckpointDisk, RestoreFromDirectoryResumesToSameResult)
{
    FullSystemOptions opts = diskOptions(2, 3);
    Tick ref_finish;
    {
        FullSystemOptions ref_opts = scenarioOptions({});
        FullSystem ref(Config(), ref_opts);
        ref_finish = ref.run(run_limit);
    }
    {
        FullSystem sys(Config(), opts);
        sys.run(run_limit);
    }
    // Boot a new system from the newest retained image and finish the
    // (already finished) run: state, including final stats, matches.
    FullSystemOptions r_opts = diskOptions(0, 3);
    r_opts.checkpoint.restore = dir_.string();
    FullSystem resumed(Config(), r_opts);
    EXPECT_GT(resumed.simulation().curTick(), 0u);
    Tick finish = resumed.run(run_limit);
    EXPECT_EQ(finish, ref_finish);
}

TEST_F(CheckpointDisk, CorruptNewestFallsBackToOlderImage)
{
    {
        FullSystem sys(Config(), diskOptions(2, 3));
        sys.run(run_limit);
    }
    auto images = checkpointFiles(dir_);
    ASSERT_GE(images.size(), 2u);

    // Corrupt the newest image (flip one byte mid-file).
    const fs::path &newest = images.back();
    {
        std::fstream f(newest,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(
            fs::file_size(newest) / 2));
        char c;
        f.seekg(f.tellp());
        f.get(c);
        f.seekp(-1, std::ios::cur);
        f.put(static_cast<char>(c ^ 0x5a));
    }

    FullSystemOptions r_opts = diskOptions(0, 3);
    r_opts.checkpoint.restore = dir_.string();
    auto warns_before = warnCount();
    FullSystem resumed(Config(), r_opts);
    EXPECT_GT(warnCount(), warns_before); // the rejection was reported
    // It restored — from the older image, i.e. an earlier tick than
    // the corrupt newest one encoded in its filename.
    EXPECT_GT(resumed.simulation().curTick(), 0u);
    Tick finish = resumed.run(run_limit);
    EXPECT_GT(finish, 0u);
    EXPECT_TRUE(resumed.allCoresDone());
}

TEST_F(CheckpointDisk, AllImagesCorruptIsFatal)
{
    {
        FullSystem sys(Config(), diskOptions(4, 2));
        sys.run(run_limit);
    }
    for (const auto &p : checkpointFiles(dir_)) {
        std::ofstream f(p, std::ios::trunc | std::ios::binary);
        f << "not a checkpoint";
    }
    FullSystemOptions r_opts = diskOptions(0, 2);
    r_opts.checkpoint.restore = dir_.string();
    EXPECT_SIM_ERROR(FullSystem(Config(), r_opts), "no usable checkpoint");
}

TEST_F(CheckpointDisk, MissingDirectoryIsFatal)
{
    FullSystemOptions r_opts = scenarioOptions({});
    r_opts.checkpoint.restore = (dir_ / "nonexistent.ckpt").string();
    EXPECT_SIM_ERROR(FullSystem(Config(), r_opts), "no usable checkpoint");
}

} // namespace
