/**
 * @file
 * Miniature versions of the paper's accuracy claims, run at test
 * scale: the reciprocal co-simulation's packet latency must sit much
 * closer to the Monolithic reference than the static abstract model,
 * and the tuned table must close part of that gap by itself.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cosim/full_system.hh"

namespace
{

using namespace rasim;
using namespace rasim::cosim;

FullSystemOptions
opts(Mode mode, const std::string &app)
{
    FullSystemOptions o;
    o.mode = mode;
    o.app = app;
    o.ops_per_core = 120;
    o.quantum = 128;
    o.noc.columns = 4;
    o.noc.rows = 4;
    o.mem.l1_sets = 16;
    return o;
}

double
relErr(double x, double ref)
{
    return std::abs(x - ref) / ref;
}

TEST(Accuracy, CosimLatencyTracksMonolithic)
{
    for (const char *app : {"fft", "radix"}) {
        FullSystem mono(Config(), opts(Mode::Monolithic, app));
        mono.run();
        FullSystem cosim(Config(), opts(Mode::CosimCycle, app));
        cosim.run();
        FullSystem abs(Config(), opts(Mode::Abstract, app));
        abs.run();

        double ref = mono.meanPacketLatency();
        double cosim_err = relErr(cosim.meanPacketLatency(), ref);
        double abs_err = relErr(abs.meanPacketLatency(), ref);
        // The co-simulation is quantised but detailed; the static
        // abstract model misses contention structure entirely.
        EXPECT_LT(cosim_err, abs_err) << app;
        EXPECT_LT(cosim_err, 0.25) << app;
    }
}

TEST(Accuracy, TunedTableBeatsStaticAbstract)
{
    const char *app = "radix";
    FullSystem mono(Config(), opts(Mode::Monolithic, app));
    mono.run();
    double ref = mono.meanPacketLatency();

    // Tune a table with a co-simulation run...
    FullSystem cosim(Config(), opts(Mode::CosimCycle, app));
    cosim.run();

    // ...and replay the workload against the tuned abstract model.
    FullSystem tuned(Config(), opts(Mode::TunedAbstract, app));
    tuned.abstractNetwork()->table() = cosim.bridge().table();
    tuned.run();

    FullSystem abs(Config(), opts(Mode::Abstract, app));
    abs.run();

    double tuned_err = relErr(tuned.meanPacketLatency(), ref);
    double abs_err = relErr(abs.meanPacketLatency(), ref);
    EXPECT_LT(tuned_err, abs_err);
}

TEST(Accuracy, RuntimePredictionImprovesWithDetail)
{
    // Full-system runtime (the metric architects actually consume)
    // must also be better predicted by the co-simulation.
    const char *app = "fft";
    FullSystem mono(Config(), opts(Mode::Monolithic, app));
    double ref = static_cast<double>(mono.run());
    FullSystem cosim(Config(), opts(Mode::CosimCycle, app));
    double c = static_cast<double>(cosim.run());
    EXPECT_LT(relErr(c, ref), 0.2);
}

} // namespace
