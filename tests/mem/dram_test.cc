/**
 * @file
 * Tests for the DRAM bank timing model.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include "mem/dram.hh"
#include "stats/group.hh"

namespace
{

using namespace rasim;
using namespace rasim::mem;

TEST(Dram, UncontendedAccessTakesLatency)
{
    stats::Group root(nullptr, "root");
    Dram d(&root, "dram", 4, 100, 64);
    EXPECT_EQ(d.access(0x0, 10), 110u);
}

TEST(Dram, SameBankSerializes)
{
    stats::Group root(nullptr, "root");
    Dram d(&root, "dram", 4, 100, 64);
    EXPECT_EQ(d.access(0x0, 0), 100u);
    // Same block -> same bank: queues behind the first access.
    EXPECT_EQ(d.access(0x0, 0), 200u);
    EXPECT_EQ(d.access(0x0, 50), 300u);
}

TEST(Dram, DifferentBanksOverlap)
{
    stats::Group root(nullptr, "root");
    Dram d(&root, "dram", 4, 100, 64);
    EXPECT_EQ(d.access(0 * 64, 0), 100u);
    EXPECT_EQ(d.access(1 * 64, 0), 100u);
    EXPECT_EQ(d.access(2 * 64, 0), 100u);
    EXPECT_EQ(d.access(3 * 64, 0), 100u);
    // Fifth access wraps to bank 0.
    EXPECT_EQ(d.access(4 * 64, 0), 200u);
}

TEST(Dram, BankFreesAfterAccess)
{
    stats::Group root(nullptr, "root");
    Dram d(&root, "dram", 2, 50, 64);
    EXPECT_EQ(d.access(0, 0), 50u);
    EXPECT_EQ(d.access(0, 1000), 1050u);
}

TEST(Dram, StatsTrackQueueing)
{
    stats::Group root(nullptr, "root");
    Dram d(&root, "dram", 1, 100, 64);
    d.access(0, 0);
    d.access(0, 0);
    EXPECT_DOUBLE_EQ(d.accesses.value(), 2.0);
    EXPECT_DOUBLE_EQ(d.queueDelay.maxValue(), 100.0);
}

TEST(Dram, BadConfigIsFatal)
{
    stats::Group root(nullptr, "root");
    EXPECT_SIM_ERROR(Dram(&root, "dram", 0, 100, 64), "bank");
}

} // namespace
