/**
 * @file
 * Tests for cache replacement policies.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include "mem/replacement.hh"
#include "sim/rng.hh"

namespace
{

using namespace rasim;
using namespace rasim::mem;

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(4, 4);
    lru.touch(0, 0, 10);
    lru.touch(0, 1, 20);
    lru.touch(0, 2, 5);
    lru.touch(0, 3, 15);
    EXPECT_EQ(lru.victim(0, {0, 1, 2, 3}), 2);
    lru.touch(0, 2, 30);
    EXPECT_EQ(lru.victim(0, {0, 1, 2, 3}), 0);
}

TEST(Lru, RespectsCandidateFilter)
{
    LruPolicy lru(1, 4);
    lru.touch(0, 0, 1);
    lru.touch(0, 1, 2);
    lru.touch(0, 2, 3);
    lru.touch(0, 3, 4);
    EXPECT_EQ(lru.victim(0, {2, 3}), 2);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.touch(0, 0, 100);
    lru.touch(0, 1, 1);
    lru.touch(1, 0, 1);
    lru.touch(1, 1, 100);
    EXPECT_EQ(lru.victim(0, {0, 1}), 1);
    EXPECT_EQ(lru.victim(1, {0, 1}), 0);
}

TEST(Lru, SameTickBreaksBySequence)
{
    LruPolicy lru(1, 2);
    lru.touch(0, 1, 7);
    lru.touch(0, 0, 7);
    EXPECT_EQ(lru.victim(0, {0, 1}), 1); // way 1 touched first
}

TEST(Fifo, EvictsOldestFill)
{
    FifoPolicy fifo(1, 3);
    fifo.touch(0, 0, 1);
    fifo.touch(0, 1, 2);
    fifo.touch(0, 2, 3);
    // Re-touching way 0 must NOT move it in FIFO order.
    fifo.touch(0, 0, 100);
    EXPECT_EQ(fifo.victim(0, {0, 1, 2}), 0);
}

TEST(Random, OnlyPicksCandidates)
{
    RandomPolicy rnd(1, 8, Rng(1, 1));
    for (int i = 0; i < 100; ++i) {
        int v = rnd.victim(0, {2, 5, 7});
        EXPECT_TRUE(v == 2 || v == 5 || v == 7);
    }
}

TEST(Random, DeterministicAcrossRuns)
{
    RandomPolicy a(1, 8, Rng(9, 9)), b(1, 8, Rng(9, 9));
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.victim(0, {0, 1, 2, 3}), b.victim(0, {0, 1, 2, 3}));
}

TEST(ReplacementFactory, MakesAllKinds)
{
    Rng rng(1, 1);
    EXPECT_EQ(makeReplacement("lru", 2, 2, rng)->name(), "lru");
    EXPECT_EQ(makeReplacement("fifo", 2, 2, rng)->name(), "fifo");
    EXPECT_EQ(makeReplacement("random", 2, 2, rng)->name(), "random");
    EXPECT_SIM_ERROR(makeReplacement("plru", 2, 2, rng), "unknown");
}

} // namespace
