/**
 * @file
 * Tests for the coherence message transport over a network model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "abstractnet/abstract_network.hh"
#include "mem/message_hub.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::mem;

struct HubFixture
{
    HubFixture()
        : net(sim, "net", noc::NocParams(),
              abstractnet::AbstractNetwork::Mode::Static),
          hub(sim, "hub", net)
    {
        net.setDeliveryHandler(
            [this](const noc::PacketPtr &pkt) { hub.deliver(pkt); });
        for (NodeId n = 0; n < 64; ++n) {
            hub.registerHandler(n, [this, n](const CoherenceMsg &msg) {
                received.emplace_back(n, msg);
            });
        }
    }

    void
    pump(Tick until)
    {
        for (Tick t = sim.curTick(); t <= until; t += 10) {
            sim.run(t);
            net.advanceTo(t);
        }
        sim.run(until);
    }

    Simulation sim;
    abstractnet::AbstractNetwork net;
    MessageHub hub;
    std::vector<std::pair<NodeId, CoherenceMsg>> received;
};

TEST(MessageHub, DeliversToRegisteredHandler)
{
    HubFixture f;
    CoherenceMsg msg;
    msg.type = MsgType::GetS;
    msg.addr = 0x1000;
    msg.sender = 3;
    msg.requestor = 3;
    f.hub.send(msg, 9);
    f.pump(500);
    ASSERT_EQ(f.received.size(), 1u);
    EXPECT_EQ(f.received[0].first, 9u);
    EXPECT_EQ(f.received[0].second.type, MsgType::GetS);
    EXPECT_EQ(f.received[0].second.addr, 0x1000u);
    EXPECT_EQ(f.hub.outstanding(), 0u);
}

TEST(MessageHub, DataMessagesAreBigger)
{
    HubFixture f;
    CoherenceMsg ctrl;
    ctrl.type = MsgType::GetS;
    ctrl.sender = 0;
    f.hub.send(ctrl, 1);
    double after_ctrl = f.hub.bytesSent.value();
    CoherenceMsg data;
    data.type = MsgType::Data;
    data.sender = 0;
    f.hub.send(data, 1);
    EXPECT_DOUBLE_EQ(after_ctrl, 8.0);
    EXPECT_DOUBLE_EQ(f.hub.bytesSent.value(), 8.0 + 72.0);
}

TEST(MessageHub, OutstandingTracksInFlight)
{
    HubFixture f;
    CoherenceMsg msg;
    msg.type = MsgType::GetM;
    msg.sender = 0;
    f.hub.send(msg, 63);
    f.hub.send(msg, 62);
    EXPECT_EQ(f.hub.outstanding(), 2u);
    f.pump(1000);
    EXPECT_EQ(f.hub.outstanding(), 0u);
    EXPECT_DOUBLE_EQ(f.hub.messagesDelivered.value(), 2.0);
}

TEST(MessageHub, ManyMessagesAllArriveAtRightNodes)
{
    HubFixture f;
    for (int i = 0; i < 200; ++i) {
        CoherenceMsg msg;
        msg.type = (i % 2) ? MsgType::Data : MsgType::Inv;
        msg.addr = static_cast<Addr>(i) * 64;
        msg.sender = static_cast<NodeId>(i % 64);
        msg.requestor = msg.sender;
        f.hub.send(msg, static_cast<NodeId>((i * 7 + 1) % 64));
        f.pump(f.sim.curTick() + 3);
    }
    f.pump(f.sim.curTick() + 2000);
    ASSERT_EQ(f.received.size(), 200u);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(f.received[i].second.addr % 64, 0u);
    }
}

} // namespace
