/**
 * @file
 * Directed MESI directory protocol tests over a real cycle-level
 * network (so message interleavings are realistic).
 */

#include <gtest/gtest.h>

#include <functional>

#include "mem/memory_system.hh"
#include "noc/cycle_network.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::mem;

struct CohFixture
{
    CohFixture()
        : net(sim, "noc", noc::NocParams()),
          mem(sim, "mem", net, MemParams())
    {
    }

    /** Run co-simulation at quantum 1 until @p until. */
    void
    pump(Tick until)
    {
        Tick t = sim.curTick();
        while (t < until) {
            ++t;
            sim.run(t);
            net.advanceTo(t);
        }
    }

    /** Pump until the whole hierarchy is quiescent. */
    void
    quiesce(Tick limit = 100000)
    {
        Tick t = sim.curTick();
        while (t < limit) {
            ++t;
            sim.run(t);
            net.advanceTo(t);
            if (mem.quiescent() && net.idle() && sim.eventq().empty())
                return;
        }
        FAIL() << "hierarchy did not quiesce";
    }

    /** Blocking access helper: pumps until the callback fires. */
    void
    doAccess(NodeId node, Addr addr, bool is_write)
    {
        bool done = false;
        bool ok = mem.l1(node).access(addr, is_write,
                                      [&done] { done = true; });
        ASSERT_TRUE(ok);
        Tick t = sim.curTick();
        while (!done && t < 100000) {
            ++t;
            sim.run(t);
            net.advanceTo(t);
        }
        ASSERT_TRUE(done) << "access did not complete";
    }

    Simulation sim;
    noc::CycleNetwork net;
    MemorySystem mem;
};

TEST(Coherence, ReadMissFetchesShared)
{
    CohFixture f;
    const Addr a = 0x10000;
    f.doAccess(5, a, false);
    f.quiesce();
    EXPECT_EQ(f.mem.l1(5).probeState(a), 'S');
    EXPECT_EQ(f.mem.directory(f.mem.homeOf(a)).probeState(a), 'S');
    EXPECT_DOUBLE_EQ(f.mem.l1(5).loadMisses.value(), 1.0);
}

TEST(Coherence, SecondReadIsAHit)
{
    CohFixture f;
    const Addr a = 0x10000;
    f.doAccess(5, a, false);
    f.doAccess(5, a, false);
    EXPECT_DOUBLE_EQ(f.mem.l1(5).loadMisses.value(), 1.0);
    EXPECT_DOUBLE_EQ(f.mem.l1(5).loadHits.value(), 1.0);
}

TEST(Coherence, TwoReadersShare)
{
    CohFixture f;
    const Addr a = 0x20000;
    f.doAccess(1, a, false);
    f.doAccess(2, a, false);
    f.quiesce();
    EXPECT_EQ(f.mem.l1(1).probeState(a), 'S');
    EXPECT_EQ(f.mem.l1(2).probeState(a), 'S');
    EXPECT_EQ(f.mem.directory(f.mem.homeOf(a)).probeSharerCount(a), 2u);
}

TEST(Coherence, WriteMissTakesOwnership)
{
    CohFixture f;
    const Addr a = 0x30000;
    f.doAccess(7, a, true);
    f.quiesce();
    EXPECT_EQ(f.mem.l1(7).probeState(a), 'M');
    EXPECT_EQ(f.mem.directory(f.mem.homeOf(a)).probeState(a), 'M');
}

TEST(Coherence, WriteInvalidatesReaders)
{
    CohFixture f;
    const Addr a = 0x40000;
    f.doAccess(1, a, false);
    f.doAccess(2, a, false);
    f.doAccess(3, a, true);
    f.quiesce();
    EXPECT_EQ(f.mem.l1(1).probeState(a), 'I');
    EXPECT_EQ(f.mem.l1(2).probeState(a), 'I');
    EXPECT_EQ(f.mem.l1(3).probeState(a), 'M');
    EXPECT_DOUBLE_EQ(f.mem.l1(1).invsReceived.value() +
                         f.mem.l1(2).invsReceived.value(),
                     2.0);
}

TEST(Coherence, UpgradeFromShared)
{
    CohFixture f;
    const Addr a = 0x50000;
    f.doAccess(4, a, false);
    f.doAccess(4, a, true);
    f.quiesce();
    EXPECT_EQ(f.mem.l1(4).probeState(a), 'M');
    EXPECT_DOUBLE_EQ(f.mem.l1(4).upgrades.value(), 1.0);
}

TEST(Coherence, ReadAfterWriteDowngradesOwner)
{
    CohFixture f;
    const Addr a = 0x60000;
    f.doAccess(1, a, true);
    f.doAccess(2, a, false);
    f.quiesce();
    EXPECT_EQ(f.mem.l1(1).probeState(a), 'S');
    EXPECT_EQ(f.mem.l1(2).probeState(a), 'S');
    EXPECT_EQ(f.mem.directory(f.mem.homeOf(a)).probeState(a), 'S');
    EXPECT_DOUBLE_EQ(f.mem.l1(1).fwdsReceived.value(), 1.0);
}

TEST(Coherence, WriteAfterWriteMovesOwnership)
{
    CohFixture f;
    const Addr a = 0x70000;
    f.doAccess(1, a, true);
    f.doAccess(2, a, true);
    f.quiesce();
    EXPECT_EQ(f.mem.l1(1).probeState(a), 'I');
    EXPECT_EQ(f.mem.l1(2).probeState(a), 'M');
    EXPECT_DOUBLE_EQ(f.mem.l1(1).fwdsReceived.value(), 1.0);
}

TEST(Coherence, DirtyEvictionWritesBack)
{
    CohFixture f;
    MemParams p; // geometry for conflict addresses
    const int set_span = p.block_bytes * p.l1_sets;
    // Fill all ways of one set with modified blocks, then one more.
    for (int i = 0; i <= p.l1_ways; ++i)
        f.doAccess(0, 0x100000 + static_cast<Addr>(i) * set_span, true);
    f.quiesce();
    EXPECT_GE(f.mem.l1(0).writebacks.value(), 1.0);
    // The first (LRU) block was evicted and its home took the data.
    EXPECT_EQ(f.mem.l1(0).probeState(0x100000), 'I');
    EXPECT_EQ(f.mem.directory(f.mem.homeOf(0x100000))
                  .probeState(0x100000),
              'I');
}

TEST(Coherence, EvictedBlockCanBeReRequested)
{
    CohFixture f;
    MemParams p;
    const int set_span = p.block_bytes * p.l1_sets;
    for (int i = 0; i <= p.l1_ways; ++i)
        f.doAccess(0, 0x100000 + static_cast<Addr>(i) * set_span, true);
    f.quiesce();
    f.doAccess(0, 0x100000, false);
    f.quiesce();
    EXPECT_EQ(f.mem.l1(0).probeState(0x100000), 'S');
}

TEST(Coherence, CoalescedLoadsShareOneTransaction)
{
    CohFixture f;
    const Addr a = 0x80000;
    int done = 0;
    ASSERT_TRUE(f.mem.l1(9).access(a, false, [&] { ++done; }));
    ASSERT_TRUE(f.mem.l1(9).access(a, false, [&] { ++done; }));
    ASSERT_TRUE(f.mem.l1(9).access(a, false, [&] { ++done; }));
    f.quiesce();
    EXPECT_EQ(done, 3);
    EXPECT_DOUBLE_EQ(
        f.mem.directory(f.mem.homeOf(a)).getSReceived.value(), 1.0);
}

TEST(Coherence, MshrExhaustionSignalsRetry)
{
    CohFixture f;
    MemParams p;
    int accepted = 0;
    for (int i = 0; i < p.mshrs + 3; ++i) {
        bool ok = f.mem.l1(0).access(
            0x200000 + static_cast<Addr>(i) * p.block_bytes * p.l1_sets *
                          2, // distinct sets? same set is fine too
            false, [] {});
        if (ok)
            ++accepted;
    }
    EXPECT_LE(accepted, p.mshrs);
    bool retried = false;
    f.mem.l1(0).setRetryCallback([&retried] { retried = true; });
    f.quiesce();
    EXPECT_TRUE(retried);
}

TEST(Coherence, ContendedBlockAllWritersComplete)
{
    CohFixture f;
    const Addr a = 0xAB000;
    int done = 0;
    // All 8 nodes write the same block "simultaneously".
    for (NodeId n = 0; n < 8; ++n)
        ASSERT_TRUE(f.mem.l1(n).access(a, true, [&] { ++done; }));
    f.quiesce();
    EXPECT_EQ(done, 8);
    int m_holders = 0;
    for (NodeId n = 0; n < 8; ++n)
        if (f.mem.l1(n).probeState(a) == 'M')
            ++m_holders;
    EXPECT_EQ(m_holders, 1);
}

TEST(Coherence, ReadersAndWriterMixQuiesces)
{
    CohFixture f;
    const Addr a = 0xCD000;
    int done = 0;
    for (NodeId n = 0; n < 16; ++n)
        ASSERT_TRUE(
            f.mem.l1(n).access(a, n % 4 == 0, [&] { ++done; }));
    f.quiesce();
    EXPECT_EQ(done, 16);
}

TEST(Coherence, HomeNodeInterleavesByBlock)
{
    CohFixture f;
    MemParams p;
    EXPECT_EQ(f.mem.homeOf(0), 0u);
    EXPECT_EQ(f.mem.homeOf(static_cast<Addr>(p.block_bytes)), 1u);
    EXPECT_EQ(f.mem.homeOf(static_cast<Addr>(p.block_bytes) * 64), 0u);
    EXPECT_EQ(f.mem.homeOf(static_cast<Addr>(p.block_bytes) * 65), 1u);
}

} // namespace
