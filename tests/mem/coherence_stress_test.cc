/**
 * @file
 * Randomised coherence stress: many nodes hammer a small block pool
 * with reads and writes; afterwards the protocol must be quiescent and
 * the single-writer invariant must hold for every block.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "mem/memory_system.hh"
#include "noc/cycle_network.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::mem;

/** Minimal driver issuing a fixed number of random ops per node. */
class StressCore
{
  public:
    StressCore(NodeId node, L1Cache &l1, Rng rng, int ops,
               const std::vector<Addr> &pool)
        : node_(node), l1_(l1), rng_(rng), remaining_(ops), pool_(pool)
    {
        l1_.setRetryCallback([this] { issue(); });
    }

    void
    issue()
    {
        while (remaining_ > 0) {
            if (waiting_)
                return;
            Addr addr = pool_[rng_.range(
                static_cast<std::uint32_t>(pool_.size()))];
            bool is_write = rng_.bernoulli(0.4);
            waiting_ = true;
            bool ok = l1_.access(addr, is_write, [this] {
                waiting_ = false;
                --remaining_;
                issue();
            });
            if (!ok) {
                waiting_ = false;
                return; // retry callback will re-enter
            }
        }
    }

    bool done() const { return remaining_ == 0 && !waiting_; }

  private:
    NodeId node_;
    L1Cache &l1_;
    Rng rng_;
    int remaining_;
    bool waiting_ = false;
    const std::vector<Addr> &pool_;
};

class CoherenceStress : public testing::TestWithParam<int>
{
};

TEST_P(CoherenceStress, RandomTrafficQuiescesCoherently)
{
    int pool_blocks = GetParam();
    Simulation sim;
    noc::NocParams np;
    np.columns = 4;
    np.rows = 4;
    noc::CycleNetwork net(sim, "noc", np);
    MemParams mp;
    mp.l1_sets = 8; // small cache: plenty of evictions
    mp.l1_ways = 2;
    MemorySystem mem(sim, "mem", net, mp);

    std::vector<Addr> pool;
    for (int i = 0; i < pool_blocks; ++i)
        pool.push_back(0x1000 + static_cast<Addr>(i) * mp.block_bytes);

    std::vector<std::unique_ptr<StressCore>> cores;
    for (NodeId n = 0; n < 16; ++n) {
        cores.push_back(std::make_unique<StressCore>(
            n, mem.l1(n), sim.makeRng(100 + n), 120, pool));
    }
    for (auto &c : cores)
        c->issue();

    Tick t = 0;
    const Tick limit = 2000000;
    bool all_done = false;
    while (t < limit) {
        t += 1;
        sim.run(t);
        net.advanceTo(t);
        all_done = true;
        for (auto &c : cores)
            all_done &= c->done();
        if (all_done && mem.quiescent() && net.idle() &&
            sim.eventq().empty())
            break;
    }
    ASSERT_TRUE(all_done) << "cores stuck at tick " << t;
    ASSERT_TRUE(mem.quiescent()) << "protocol not quiescent";

    // Single-writer invariant per block, cross-checked against the
    // directory's view.
    for (Addr a : pool) {
        int m_holders = 0, s_holders = 0;
        for (NodeId n = 0; n < 16; ++n) {
            char st = mem.l1(n).probeState(a);
            ASSERT_NE(st, 'T') << "transient state at quiescence";
            m_holders += (st == 'M');
            s_holders += (st == 'S');
        }
        char dir = mem.directory(mem.homeOf(a)).probeState(a);
        ASSERT_NE(dir, 'B');
        EXPECT_LE(m_holders, 1) << "block 0x" << std::hex << a;
        if (m_holders == 1) {
            EXPECT_EQ(s_holders, 0);
            EXPECT_EQ(dir, 'M');
        } else {
            EXPECT_NE(dir, 'M');
        }
    }
}

// Pool sizes: 1 block = maximum contention; 4 = heavy sharing;
// 64 = mixed; 512 = capacity-dominated (many evictions).
INSTANTIATE_TEST_SUITE_P(Pools, CoherenceStress,
                         testing::Values(1, 4, 64, 512));

} // namespace
