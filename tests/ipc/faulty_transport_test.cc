/**
 * @file
 * FaultyTransport against a live rasim-nocd server: every forced
 * fault kind must surface as the documented SimError at the right
 * layer — send-side faults immediately, receive-side faults through
 * the frame decoder (torn frame, short read, CRC trip, forged
 * oversize length, stall timeout) — and every injected failure must
 * leave the channel closed, the way a real transport failure leaves
 * the stream untrustworthy. Also covers the server-side chaos mode:
 * a daemon that tears its own reply mid-frame (the mid-frame-kill
 * scenario without killing the process) while staying healthy for
 * the next session.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "ipc/faulty_transport.hh"
#include "ipc/frame.hh"
#include "ipc/nocd_server.hh"
#include "ipc/protocol.hh"
#include "noc/packet.hh"
#include "sim/fault_injector.hh"
#include "sim/sim_error.hh"

namespace
{

using namespace rasim;
using namespace rasim::ipc;

class FaultyTransportTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        addr_ = "unix:/tmp/rasim-faulty-" + std::to_string(::getpid()) +
                ".sock";
    }

    void
    TearDown() override
    {
        stopServer();
    }

    void
    startServer(NocServerOptions opts = {})
    {
        opts.address = addr_;
        server_ = std::make_unique<NocServer>(opts);
        thread_ = std::thread([this] { server_->run(); });
    }

    void
    stopServer()
    {
        if (!server_)
            return;
        server_->stop();
        thread_.join();
        server_.reset();
    }

    /** A connected channel wrapped in a forced-fault decorator (all
     *  probabilities zero: only failNext*() injects). */
    std::unique_ptr<FaultyTransport>
    connectFaulty()
    {
        TransportFaultOptions opts;
        opts.enabled = true;
        auto inner =
            std::make_unique<FdChannel>(connectTo(addr_, 2000.0));
        return std::make_unique<FaultyTransport>(std::move(inner),
                                                 opts);
    }

    void
    hello(ByteChannel &ch)
    {
        HelloRequest req;
        req.params.columns = 4;
        req.params.rows = 4;
        ArchiveWriter aw = beginMessage(MsgType::Hello);
        encodeHello(aw, req);
        sendMessage(ch, std::move(aw));
        auto rep = recvMessage(ch, 5000.0);
        ASSERT_TRUE(rep.has_value());
        ASSERT_EQ(rep->type, MsgType::HelloAck);
        (void)decodeHelloReply(rep->ar);
        rep->done();
    }

    void
    sendAdvance(ByteChannel &ch, Tick target)
    {
        ArchiveWriter aw = beginMessage(MsgType::Advance);
        encodeAdvance(aw, target);
        sendMessage(ch, std::move(aw));
    }

    std::string addr_;
    std::unique_ptr<NocServer> server_;
    std::thread thread_;
};

TEST_F(FaultyTransportTest, SendFaultsSurfaceImmediatelyAndClose)
{
    startServer();
    for (TransportFaultKind kind : {TransportFaultKind::Disconnect,
                                    TransportFaultKind::ShortRead,
                                    TransportFaultKind::TornFrame}) {
        auto ch = connectFaulty();
        ch->failNextSend(kind);
        ArchiveWriter aw = beginMessage(MsgType::Hello);
        encodeHello(aw, HelloRequest{});
        try {
            sendMessage(*ch, std::move(aw));
            FAIL() << "send survived forced " << toString(kind);
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Transport) << toString(kind);
            EXPECT_NE(std::string(e.what()).find(
                          "injected transport fault"),
                      std::string::npos)
                << e.what();
            EXPECT_NE(std::string(e.what()).find(toString(kind)),
                      std::string::npos)
                << e.what();
        }
        EXPECT_FALSE(ch->valid())
            << toString(kind) << " left the channel open";
        EXPECT_EQ(ch->schedule().count(kind), 1u);
    }
}

TEST_F(FaultyTransportTest, DelayedSendCompletesIntact)
{
    startServer();
    auto ch = connectFaulty();
    ch->failNextSend(TransportFaultKind::Delay);
    hello(*ch); // the delayed Hello still lands whole
    EXPECT_TRUE(ch->valid());
}

TEST_F(FaultyTransportTest, CorruptedSendTripsTheServersCrc)
{
    startServer();
    auto ch = connectFaulty();
    hello(*ch);
    // The corrupted frame leaves this side happily, the server's
    // decoder trips on the CRC and drops the session; the client
    // notices at the reply — a closed stream, not a hang.
    ch->failNextSend(TransportFaultKind::Corrupt);
    sendAdvance(*ch, 100);
    try {
        auto rep = recvMessage(*ch, 5000.0);
        EXPECT_FALSE(rep.has_value()) << "server accepted a bad CRC";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport) << e.what();
    }
}

TEST_F(FaultyTransportTest, RecvFaultsMapOntoTheFrameTaxonomy)
{
    startServer();
    struct Case
    {
        TransportFaultKind kind;
        ErrorKind expect;
        const char *needle;
        bool closes; ///< the injector itself killed the stream
    };
    const Case cases[] = {
        {TransportFaultKind::ShortRead, ErrorKind::Transport, "closed",
         true},
        {TransportFaultKind::TornFrame, ErrorKind::Transport, "closed",
         true},
        // Oversize forges the length field; the channel survives but
        // the stream is desynchronised — the caller must abandon it.
        {TransportFaultKind::Oversize, ErrorKind::Transport,
         "oversized frame rejected", false},
        {TransportFaultKind::Stall, ErrorKind::Timeout, "stall", true},
    };
    for (const Case &c : cases) {
        auto ch = connectFaulty();
        hello(*ch);
        sendAdvance(*ch, 100);
        ch->failNextRecv(c.kind);
        try {
            (void)recvMessage(*ch, 5000.0);
            FAIL() << "recv survived forced " << toString(c.kind);
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), c.expect) << toString(c.kind) << ": "
                                          << e.what();
            EXPECT_NE(std::string(e.what()).find(c.needle),
                      std::string::npos)
                << toString(c.kind) << " message: " << e.what();
        }
        EXPECT_EQ(ch->valid(), !c.closes) << toString(c.kind);
    }
}

TEST_F(FaultyTransportTest, ScheduledCorruptionTripsTheArchiveCrc)
{
    // The probability schedule applies Corrupt only to *payload*
    // reads (header bands have no corrupt entry), so a CRC trip is
    // always an archive-level failure with framing intact. Client
    // ops: 0 Hello send, 1/2 its reply, 3 Advance send, 4/5 its
    // reply — arming the schedule at op 5 corrupts exactly the
    // DeliveryBatch payload.
    startServer();
    TransportFaultOptions opts;
    opts.enabled = true;
    opts.corrupt = 1.0;
    opts.start_op = 5;
    auto inner = std::make_unique<FdChannel>(connectTo(addr_, 2000.0));
    FaultyTransport ch(std::move(inner), opts);
    hello(ch);
    sendAdvance(ch, 100);
    try {
        (void)recvMessage(ch, 5000.0);
        FAIL() << "corrupted reply decoded";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport);
        EXPECT_NE(std::string(e.what()).find("corrupt message payload"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_EQ(ch.schedule().count(TransportFaultKind::Corrupt), 1u);
}

TEST_F(FaultyTransportTest, ServerSideChaosTearsReplyMidFrame)
{
    // Server-side schedule: ops 0-2 serve the Hello exchange (recv
    // header, recv payload, send ack); op 3/4 receive the Advance;
    // op 5 — the DeliveryBatch reply — is the first armed op and
    // tears with probability 1. The client must see the torn reply as
    // a Transport error mid-payload: the mid-frame-kill scenario,
    // with the daemon alive throughout.
    NocServerOptions sopts;
    sopts.fault.enabled = true;
    sopts.fault.torn_frame = 1.0;
    sopts.fault.start_op = 5;
    startServer(sopts);

    Fd fd = connectTo(addr_, 2000.0);
    FdChannel ch(std::move(fd));
    hello(ch);
    sendAdvance(ch, 100);
    try {
        (void)recvMessage(ch, 5000.0);
        FAIL() << "torn server reply decoded";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport) << e.what();
    }

    // Per-session schedules: the next session (its own stream) gets
    // the same deterministic plan — a clean handshake — and the
    // daemon is still healthy enough to serve it.
    Fd fd2 = connectTo(addr_, 2000.0);
    FdChannel ch2(std::move(fd2));
    hello(ch2);
    EXPECT_GE(server_->counters().sessions_served, 2u);
}

} // namespace
