/**
 * @file
 * Multi-session soak for the rasim-nocd daemon: N concurrent clients
 * co-simulating against ONE server process must each get results
 * bit-identical to a solo run of the same workload — same deliveries
 * in the same order, same remote stats tree, same shadow-tuned
 * LatencyTable — because sessions share nothing stateful. Also pins
 * the daemon's operational contracts: admission control refuses
 * connections over server.max_sessions with a typed error, oversize
 * inject batches are refused as "backpressure:" (and the session
 * survives via reconnect), and the scheduler/speculation counters
 * export sanely.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/nocd_server.hh"
#include "noc/remote/remote_network.hh"
#include "sim/rng.hh"
#include "sim/sim_error.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

struct Delivery
{
    PacketId id;
    Tick deliver_tick;
    Tick latency;
    std::uint32_t hops;

    bool operator==(const Delivery &o) const = default;
};

struct RunResult
{
    std::vector<Delivery> deliveries;
    std::vector<std::tuple<std::string, std::string, double>> stats;
    std::unique_ptr<abstractnet::LatencyTable> table;
};

NocParams
smallMesh()
{
    NocParams p;
    p.columns = 4;
    p.rows = 4;
    return p;
}

remote::RemoteOptions
clientOptions(const std::string &addr, int seat)
{
    remote::RemoteOptions ro;
    ro.socket = addr;
    ro.model = "cycle";
    // Vary the hosted engine across seats; bit-identity is per-seat
    // (solo counterpart uses the same options).
    ro.engine_workers = (seat % 2) ? 2 : 0;
    return ro;
}

/** One client's whole life against the daemon: open a session, drive
 *  seeded traffic through 16 quanta, read back stats and the tuned
 *  table. Each seat gets its own traffic seed, so concurrent sessions
 *  are never in lock-step. */
RunResult
runClient(const std::string &addr, int seat)
{
    Simulation sim;
    remote::RemoteNetwork net(sim, "rnet", smallMesh(),
                              clientOptions(addr, seat));
    RunResult r;
    net.setDeliveryHandler([&](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
    });
    Rng rng(0x500 + static_cast<std::uint64_t>(seat), 3);
    const std::size_t nodes = net.numNodes();
    for (int i = 0; i < 200; ++i) {
        net.inject(makePacket(
            static_cast<PacketId>(i + 1),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<MsgClass>(rng.range(3)),
            rng.bernoulli(0.5) ? 8 : 64, static_cast<Tick>(i / 3)));
    }
    for (Tick t = 500; t <= 8000; t += 500)
        net.advanceTo(t);
    EXPECT_TRUE(net.idle()) << "seat " << seat;
    for (const ipc::StatRow &row : net.fetchRemoteStats())
        r.stats.emplace_back(row.path, row.sub, row.value);
    r.table = std::make_unique<abstractnet::LatencyTable>(
        net.fetchTunedTable());
    return r;
}

void
expectIdentical(const RunResult &solo, const RunResult &soak, int seat)
{
    ASSERT_EQ(soak.deliveries.size(), solo.deliveries.size())
        << "seat " << seat;
    for (std::size_t k = 0; k < solo.deliveries.size(); ++k)
        ASSERT_TRUE(soak.deliveries[k] == solo.deliveries[k])
            << "seat " << seat << " delivery #" << k << " packet "
            << solo.deliveries[k].id;
    ASSERT_EQ(soak.stats, solo.stats) << "seat " << seat;
    EXPECT_TRUE(soak.table->identicalTo(*solo.table)) << "seat " << seat;
}

class MultiSession : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        addr_ = "unix:/tmp/rasim-soak-" + std::to_string(::getpid()) +
                ".sock";
    }

    void
    TearDown() override
    {
        stopServer();
    }

    void
    startServer(const ipc::NocServerOptions &base)
    {
        ipc::NocServerOptions opts = base;
        opts.address = addr_;
        server_ = std::make_unique<ipc::NocServer>(opts);
        thread_ = std::thread([this] { server_->run(); });
    }

    void
    stopServer()
    {
        if (!server_)
            return;
        server_->stop();
        thread_.join();
        server_.reset();
    }

    std::string addr_;
    std::unique_ptr<ipc::NocServer> server_;
    std::thread thread_;
};

TEST_F(MultiSession, ConcurrentSessionsBitIdenticalToSolo)
{
    constexpr int N = 5;
    startServer(ipc::NocServerOptions{});

    // Solo baselines: one session at a time, per-seat options/seed.
    std::vector<RunResult> solo(N);
    for (int seat = 0; seat < N; ++seat) {
        solo[seat] = runClient(addr_, seat);
        ASSERT_FALSE(solo[seat].deliveries.empty()) << "seat " << seat;
    }

    // Soak: the same N workloads at once. Sessions open on the main
    // thread first so all N provably coexist (the peak counter must
    // see them), then each is driven on its own thread.
    struct Seat
    {
        Simulation sim;
        remote::RemoteNetwork net;
        RunResult r;

        Seat(const std::string &addr, int seat)
            : net(sim, "rnet", smallMesh(), clientOptions(addr, seat))
        {
        }
    };
    std::vector<std::unique_ptr<Seat>> seats;
    for (int seat = 0; seat < N; ++seat)
        seats.push_back(std::make_unique<Seat>(addr_, seat));

    std::vector<std::thread> drivers;
    for (int seat = 0; seat < N; ++seat) {
        drivers.emplace_back([&, seat] {
            Seat &s = *seats[seat];
            s.net.setDeliveryHandler([&](const PacketPtr &pkt) {
                s.r.deliveries.push_back({pkt->id, pkt->deliver_tick,
                                          pkt->latency(), pkt->hops});
            });
            Rng rng(0x500 + static_cast<std::uint64_t>(seat), 3);
            const std::size_t nodes = s.net.numNodes();
            for (int i = 0; i < 200; ++i) {
                s.net.inject(makePacket(
                    static_cast<PacketId>(i + 1),
                    static_cast<NodeId>(rng.range(nodes)),
                    static_cast<NodeId>(rng.range(nodes)),
                    static_cast<MsgClass>(rng.range(3)),
                    rng.bernoulli(0.5) ? 8 : 64,
                    static_cast<Tick>(i / 3)));
            }
            for (Tick t = 500; t <= 8000; t += 500)
                s.net.advanceTo(t);
            for (const ipc::StatRow &row : s.net.fetchRemoteStats())
                s.r.stats.emplace_back(row.path, row.sub, row.value);
            s.r.table = std::make_unique<abstractnet::LatencyTable>(
                s.net.fetchTunedTable());
        });
    }
    for (auto &t : drivers)
        t.join();

    for (int seat = 0; seat < N; ++seat)
        expectIdentical(solo[seat], seats[seat]->r, seat);
    seats.clear(); // close the sessions before reading counters

    const ipc::NocServerCounters c = server_->counters();
    EXPECT_EQ(c.sessions_served, static_cast<std::uint64_t>(2 * N));
    EXPECT_GE(c.sessions_peak, static_cast<std::uint64_t>(N));
    EXPECT_EQ(c.sessions_rejected, 0u);
    // Every run exchanged at least Hello, one busy quantum, the
    // post-elision sync, StatsGet and TableGet (most of the 16 quanta
    // are legitimately elided once the fabric drains).
    EXPECT_GE(c.frames, static_cast<std::uint64_t>(2 * N * 5));
    // Counter sanity: derived counters never exceed their base.
    EXPECT_LE(c.quota_yields, c.sched_waits);
    EXPECT_LE(c.sched_waits, c.frames);
    EXPECT_LE(c.spec_hits + c.spec_rebases, c.frames);
    EXPECT_EQ(c.quota_trips, 0u);
}

TEST_F(MultiSession, AdmissionCapRefusesWithTypedErrorThenRecovers)
{
    ipc::NocServerOptions so;
    so.max_sessions = 1;
    startServer(so);

    Simulation sim_a;
    auto a = std::make_unique<remote::RemoteNetwork>(
        sim_a, "rnet", smallMesh(), clientOptions(addr_, 0));
    ASSERT_TRUE(a->connected());

    // The second concurrent session must be refused with a typed
    // error naming the condition — never a hang or a silent close.
    bool refused = false;
    try {
        Simulation sim_b;
        remote::RemoteNetwork b(sim_b, "rnet", smallMesh(),
                                clientOptions(addr_, 1));
    } catch (const SimError &e) {
        refused = true;
        EXPECT_NE(std::string(e.what()).find("capacity"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_TRUE(refused);
    EXPECT_GE(server_->counters().sessions_rejected, 1u);

    // The admitted session is unharmed by the rejection.
    a->inject(makePacket(1, 0, 15, MsgClass::Request, 8, 10));
    a->advanceTo(1000);
    EXPECT_EQ(a->deliveredCount(), 1u);

    // Once the seat frees up, a new client is admitted. The server
    // reaps the finished session asynchronously, so poll briefly.
    a.reset();
    bool admitted = false;
    for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
        try {
            Simulation sim_c;
            remote::RemoteNetwork c(sim_c, "rnet", smallMesh(),
                                    clientOptions(addr_, 2));
            admitted = c.connected();
        } catch (const SimError &) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    }
    EXPECT_TRUE(admitted);
}

TEST_F(MultiSession, OversizeBatchRefusedAsBackpressure)
{
    ipc::NocServerOptions so;
    so.max_batch_packets = 4;
    startServer(so);

    Simulation sim;
    remote::RemoteNetwork net(sim, "rnet", smallMesh(),
                              clientOptions(addr_, 0));
    for (int i = 0; i < 8; ++i)
        net.inject(makePacket(static_cast<PacketId>(i + 1), 0, 15,
                              MsgClass::Request, 8, 10));
    try {
        net.advanceTo(1000);
        FAIL() << "oversize batch was accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport);
        EXPECT_NE(std::string(e.what()).find("backpressure:"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_GE(server_->counters().quota_trips, 1u);

    // The refusal is per-batch, not fatal: the client reconnects and
    // in-quota batches flow again (the refused packets are lost with
    // the batch, by the documented buffered-injection contract).
    net.inject(makePacket(100, 0, 15, MsgClass::Request, 8, 1200));
    net.inject(makePacket(101, 5, 10, MsgClass::Response, 8, 1300));
    net.advanceTo(3000);
    EXPECT_TRUE(net.connected());
    EXPECT_EQ(net.deliveredCount(), 2u);
}

} // namespace
