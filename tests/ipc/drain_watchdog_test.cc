/**
 * @file
 * The daemon's graceful wind-down and its session watchdog. drain()
 * (what SIGTERM triggers) must let an in-flight request finish and
 * close every session at a frame boundary — the client sees complete
 * replies followed by a clean EOF, never a torn frame — and run()
 * must return within the drain timeout. The watchdog must reap a
 * session that stops completing frames (a hung or vanished client)
 * by shutting its socket down from the accept thread, freeing the
 * seat for new sessions.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "ipc/frame.hh"
#include "ipc/nocd_server.hh"
#include "ipc/protocol.hh"
#include "sim/sim_error.hh"

namespace
{

using namespace rasim;
using namespace rasim::ipc;

class DrainWatchdogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        addr_ = "unix:/tmp/rasim-drain-" + std::to_string(::getpid()) +
                ".sock";
    }

    void
    TearDown() override
    {
        if (server_) {
            server_->stop();
            if (thread_.joinable())
                thread_.join();
        }
    }

    void
    startServer(NocServerOptions opts = {})
    {
        opts.address = addr_;
        server_ = std::make_unique<NocServer>(opts);
        thread_ = std::thread([this] { server_->run(); });
    }

    void
    hello(const Fd &fd)
    {
        HelloRequest req;
        req.params.columns = 4;
        req.params.rows = 4;
        ArchiveWriter aw = beginMessage(MsgType::Hello);
        encodeHello(aw, req);
        sendMessage(fd, std::move(aw));
        auto rep = recvMessage(fd, 5000.0);
        ASSERT_TRUE(rep.has_value());
        ASSERT_EQ(rep->type, MsgType::HelloAck);
        (void)decodeHelloReply(rep->ar);
        rep->done();
    }

    AdvanceReply
    advance(const Fd &fd, Tick target)
    {
        ArchiveWriter aw = beginMessage(MsgType::Advance);
        encodeAdvance(aw, target);
        sendMessage(fd, std::move(aw));
        auto rep = recvMessage(fd, 5000.0);
        EXPECT_TRUE(rep.has_value());
        EXPECT_EQ(rep->type, MsgType::DeliveryBatch);
        AdvanceReply ar = decodeAdvanceReply(rep->ar);
        rep->done();
        return ar;
    }

    std::string addr_;
    std::unique_ptr<NocServer> server_;
    std::thread thread_;
};

TEST_F(DrainWatchdogTest, DrainClosesSessionsAtFrameBoundaries)
{
    NocServerOptions opts;
    opts.drain_timeout_ms = 3000.0;
    startServer(opts);

    Fd fd = connectTo(addr_, 2000.0);
    hello(fd);
    // A complete request/reply exchange proves the session is live
    // and the previous reply went out whole.
    AdvanceReply rep = advance(fd, 100);
    EXPECT_EQ(rep.cur_time, 100u);

    server_->drain();
    // run() returns on its own — no stop() — once the session has
    // wound down at its frame boundary.
    thread_.join();
    thread_ = std::thread{}; // joined; TearDown must not re-join

    // The client side of the wind-down is a clean EOF, which the
    // frame layer reports as "no message" — not a short-read or
    // torn-frame Transport error.
    auto msg = recvMessage(fd, 2000.0);
    EXPECT_FALSE(msg.has_value()) << "expected a clean EOF";
    server_.reset(); // already stopped; releases the address
}

TEST_F(DrainWatchdogTest, DrainLetsAnInFlightRequestFinish)
{
    NocServerOptions opts;
    opts.drain_timeout_ms = 5000.0;
    startServer(opts);

    Fd fd = connectTo(addr_, 2000.0);
    hello(fd);

    // Race drain() against an in-flight Advance: whichever way the
    // timing falls, the reply must arrive either whole or not at all
    // (clean EOF) — a torn frame would surface as a Transport throw
    // from recvMessage.
    ArchiveWriter aw = beginMessage(MsgType::Advance);
    encodeAdvance(aw, 5000);
    sendMessage(fd, std::move(aw));
    server_->drain();
    try {
        auto rep = recvMessage(fd, 5000.0);
        if (rep) {
            EXPECT_EQ(rep->type, MsgType::DeliveryBatch);
            (void)decodeAdvanceReply(rep->ar);
            rep->done();
            // After the served request the drain closes cleanly.
            auto eof = recvMessage(fd, 5000.0);
            EXPECT_FALSE(eof.has_value());
        }
    } catch (const SimError &e) {
        FAIL() << "drain tore a frame: " << e.what();
    }
    thread_.join();
    thread_ = std::thread{};
    server_.reset();
}

TEST_F(DrainWatchdogTest, WatchdogReapsASessionThatStopsFraming)
{
    NocServerOptions opts;
    opts.session_timeout_ms = 150.0;
    startServer(opts);

    Fd hung = connectTo(addr_, 2000.0);
    hello(hung);
    // ... and now the client goes silent, mid-session, forever.

    // The watchdog (driven by the accept thread's timed slices) must
    // shut the session down within a few timeout periods.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server_->counters().sessions_reaped == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(server_->counters().sessions_reaped, 1u);

    // The reaped socket reads EOF (or a reset, on some stacks).
    try {
        auto msg = recvMessage(hung, 2000.0);
        EXPECT_FALSE(msg.has_value());
    } catch (const SimError &) {
        // A connection-reset Transport error is an acceptable read of
        // a shut-down socket too.
    }

    // The freed seat serves a fresh, *active* session, which the
    // watchdog leaves alone as long as it keeps completing frames.
    Fd fresh = connectTo(addr_, 2000.0);
    hello(fresh);
    for (Tick t = 100; t <= 400; t += 100) {
        AdvanceReply rep = advance(fresh, t);
        EXPECT_EQ(rep.cur_time, t);
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    EXPECT_EQ(server_->counters().sessions_reaped, 1u)
        << "the watchdog reaped a session that was completing frames";
}

} // namespace
