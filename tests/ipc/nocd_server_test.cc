/**
 * @file
 * Session-level tests of the rasim-nocd server: the protocol lifecycle
 * over a real Unix-domain socket, error replies for malformed or
 * out-of-order requests, and the server-side checkpoint round trip.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ipc/frame.hh"
#include "ipc/nocd_server.hh"
#include "ipc/protocol.hh"
#include "noc/packet.hh"
#include "sim/serialize.hh"
#include "sim/sim_error.hh"

namespace
{

using namespace rasim;
using namespace rasim::ipc;

/** A running server on a per-test Unix socket + its service thread. */
class ServerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        addr_ = "unix:/tmp/rasim-nocd-test-" +
                std::to_string(::getpid()) + ".sock";
        NocServerOptions opts;
        opts.address = addr_;
        server_ = std::make_unique<NocServer>(opts);
        thread_ = std::thread([this] { server_->run(); });
    }

    void
    TearDown() override
    {
        server_->stop();
        thread_.join();
    }

    Fd
    connect()
    {
        return connectTo(addr_, 2000.0);
    }

    /** One request/reply exchange. */
    Message
    call(const Fd &fd, ArchiveWriter &&aw)
    {
        sendMessage(fd, std::move(aw));
        auto msg = recvMessage(fd, 5000.0);
        EXPECT_TRUE(msg.has_value());
        return std::move(*msg);
    }

    HelloReply
    hello(const Fd &fd, const HelloRequest &req)
    {
        ArchiveWriter aw = beginMessage(MsgType::Hello);
        encodeHello(aw, req);
        Message rep = call(fd, std::move(aw));
        EXPECT_EQ(rep.type, MsgType::HelloAck);
        HelloReply hr = decodeHelloReply(rep.ar);
        rep.done();
        return hr;
    }

    AdvanceReply
    advance(const Fd &fd, Tick target)
    {
        ArchiveWriter aw = beginMessage(MsgType::Advance);
        encodeAdvance(aw, target);
        Message rep = call(fd, std::move(aw));
        EXPECT_EQ(rep.type, MsgType::DeliveryBatch);
        AdvanceReply ar = decodeAdvanceReply(rep.ar);
        rep.done();
        return ar;
    }

    /** Coalesced v2 quantum exchange; returns the reply + flag bits. */
    std::pair<AdvanceReply, std::uint8_t>
    step(const Fd &fd, Tick target, bool speculate,
         std::vector<noc::PacketPtr> pkts = {})
    {
        StepRequest req;
        req.target = target;
        req.speculate = speculate;
        req.packets = std::move(pkts);
        ArchiveWriter aw = beginMessage(MsgType::Step);
        encodeStep(aw, req);
        Message rep = call(fd, std::move(aw));
        EXPECT_EQ(rep.type, MsgType::StepReply);
        std::uint8_t flags = 0;
        AdvanceReply ar = decodeStepReply(rep.ar, flags);
        rep.done();
        return {ar, flags};
    }

    std::vector<StatRow>
    statsRows(const Fd &fd)
    {
        Message rep = call(fd, beginMessage(MsgType::StatsGet));
        EXPECT_EQ(rep.type, MsgType::StatsData);
        std::vector<StatRow> rows = decodeStatsReply(rep.ar);
        rep.done();
        return rows;
    }

    std::string addr_;
    std::unique_ptr<NocServer> server_;
    std::thread thread_;
};

TEST_F(ServerFixture, HelloBuildsTheHostedNetwork)
{
    Fd fd = connect();
    HelloRequest req;
    req.params.columns = 4;
    req.params.rows = 4;
    HelloReply hr = hello(fd, req);
    EXPECT_EQ(hr.num_nodes, 16u);
    EXPECT_EQ(hr.cur_time, 0u);
}

TEST_F(ServerFixture, InjectAdvanceDelivers)
{
    Fd fd = connect();
    HelloRequest req;
    req.params.columns = 4;
    req.params.rows = 4;
    hello(fd, req);

    std::vector<noc::PacketPtr> pkts;
    pkts.push_back(
        noc::makePacket(1, 0, 15, noc::MsgClass::Request, 8, 5));
    pkts.push_back(
        noc::makePacket(2, 3, 12, noc::MsgClass::Response, 72, 7));
    ArchiveWriter aw = beginMessage(MsgType::InjectBatch);
    encodePackets(aw, pkts);
    sendMessage(fd, std::move(aw)); // deliberately unacknowledged

    AdvanceReply rep = advance(fd, 5000);
    EXPECT_EQ(rep.cur_time, 5000u);
    EXPECT_TRUE(rep.idle);
    EXPECT_EQ(rep.injected, 2u);
    EXPECT_EQ(rep.delivered, 2u);
    EXPECT_EQ(rep.in_flight, 0u);
    ASSERT_EQ(rep.deliveries.size(), 2u);
    for (const auto &pkt : rep.deliveries)
        EXPECT_GT(pkt->latency(), 0u);
}

TEST_F(ServerFixture, RequestBeforeHelloIsATypedError)
{
    Fd fd = connect();
    ArchiveWriter aw = beginMessage(MsgType::Advance);
    encodeAdvance(aw, 100);
    Message rep = call(fd, std::move(aw));
    ASSERT_EQ(rep.type, MsgType::ErrorReply);
    try {
        throwDecodedError(rep.ar);
        FAIL() << "throwDecodedError returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport);
        EXPECT_NE(std::string(e.what()).find("before Hello"),
                  std::string::npos);
    }
}

TEST_F(ServerFixture, ProtocolVersionMismatchIsRejected)
{
    Fd fd = connect();
    HelloRequest req;
    req.proto = protocol_version + 1;
    ArchiveWriter aw = beginMessage(MsgType::Hello);
    encodeHello(aw, req);
    Message rep = call(fd, std::move(aw));
    ASSERT_EQ(rep.type, MsgType::ErrorReply);
    try {
        throwDecodedError(rep.ar);
        FAIL() << "throwDecodedError returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport);
        EXPECT_NE(std::string(e.what()).find("version mismatch"),
                  std::string::npos);
    }
}

TEST_F(ServerFixture, UnknownModelIsRejected)
{
    Fd fd = connect();
    HelloRequest req;
    req.model = "quantum-foam";
    ArchiveWriter aw = beginMessage(MsgType::Hello);
    encodeHello(aw, req);
    Message rep = call(fd, std::move(aw));
    ASSERT_EQ(rep.type, MsgType::ErrorReply);
    try {
        throwDecodedError(rep.ar);
        FAIL() << "throwDecodedError returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("unknown hosted model"),
                  std::string::npos);
    }
}

TEST_F(ServerFixture, CheckpointRoundTripRewindsTheSession)
{
    Fd fd = connect();
    HelloRequest req;
    req.params.columns = 4;
    req.params.rows = 4;
    hello(fd, req);

    std::vector<noc::PacketPtr> pkts;
    pkts.push_back(
        noc::makePacket(1, 0, 15, noc::MsgClass::Request, 8, 5));
    ArchiveWriter inj = beginMessage(MsgType::InjectBatch);
    encodePackets(inj, pkts);
    sendMessage(fd, std::move(inj));
    AdvanceReply a1 = advance(fd, 1000);
    EXPECT_EQ(a1.delivered, 1u);

    Message ck = call(fd, beginMessage(MsgType::CkptSave));
    ASSERT_EQ(ck.type, MsgType::CkptData);
    CkptReply saved = decodeCkptReply(ck.ar);
    ck.done();
    std::string image = saved.image;
    EXPECT_FALSE(image.empty());
    // The image travels with its attestation digest.
    EXPECT_EQ(saved.digest, crc64(image));

    // Diverge, then rewind with the image.
    std::vector<noc::PacketPtr> more;
    more.push_back(
        noc::makePacket(2, 1, 14, noc::MsgClass::Forward, 8, 1500));
    ArchiveWriter inj2 = beginMessage(MsgType::InjectBatch);
    encodePackets(inj2, more);
    sendMessage(fd, std::move(inj2));
    AdvanceReply a2 = advance(fd, 3000);
    EXPECT_EQ(a2.delivered, 2u);

    ArchiveWriter load = beginMessage(MsgType::CkptLoad);
    load.putString(image);
    Message ack = call(fd, std::move(load));
    ASSERT_EQ(ack.type, MsgType::CkptLoadAck);
    CkptLoadReply lr = decodeCkptLoadReply(ack.ar);
    ack.done();
    EXPECT_EQ(lr.cur_time, 1000u);
    // Replica attestation: what the session now holds re-serializes
    // to exactly the image it was primed from.
    EXPECT_EQ(lr.digest, crc64(image));

    // The restored session replays the diverged tail identically.
    ArchiveWriter inj3 = beginMessage(MsgType::InjectBatch);
    encodePackets(inj3, more);
    sendMessage(fd, std::move(inj3));
    AdvanceReply a3 = advance(fd, 3000);
    EXPECT_EQ(a3.delivered, a2.delivered);
    EXPECT_EQ(a3.injected, a2.injected);
}

TEST_F(ServerFixture, CorruptCheckpointImageIsRejected)
{
    Fd fd = connect();
    HelloRequest req;
    hello(fd, req);

    ArchiveWriter load = beginMessage(MsgType::CkptLoad);
    load.putString("definitely not an archive");
    Message rep = call(fd, std::move(load));
    ASSERT_EQ(rep.type, MsgType::ErrorReply);
    try {
        throwDecodedError(rep.ar);
        FAIL() << "throwDecodedError returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport);
        EXPECT_NE(std::string(e.what()).find("corrupt checkpoint"),
                  std::string::npos);
    }
}

TEST_F(ServerFixture, PingIsLegalBeforeHello)
{
    // Liveness probes must work on a sessionless connection: this is
    // what the supervisor's heartbeat and the client's prober send.
    Fd fd = connect();
    PingRequest req;
    req.nonce = 0xfeedfacecafebeefull;
    ArchiveWriter aw = beginMessage(MsgType::Ping);
    encodePing(aw, req);
    Message rep = call(fd, std::move(aw));
    ASSERT_EQ(rep.type, MsgType::Pong);
    PongReply pong = decodePong(rep.ar);
    rep.done();
    EXPECT_EQ(pong.nonce, req.nonce);
    EXPECT_FALSE(pong.in_session);
    EXPECT_EQ(pong.cur_time, 0u);
}

TEST_F(ServerFixture, PingInSessionReportsSessionState)
{
    Fd fd = connect();
    HelloRequest hreq;
    hello(fd, hreq);
    step(fd, 500, false);

    PingRequest req;
    req.nonce = 42;
    ArchiveWriter aw = beginMessage(MsgType::Ping);
    encodePing(aw, req);
    Message rep = call(fd, std::move(aw));
    ASSERT_EQ(rep.type, MsgType::Pong);
    PongReply pong = decodePong(rep.ar);
    rep.done();
    EXPECT_EQ(pong.nonce, 42u);
    EXPECT_TRUE(pong.in_session);
    EXPECT_EQ(pong.cur_time, 500u);
    EXPECT_GE(pong.sessions_active, 1u);
    EXPECT_GE(pong.sessions_served, 1u);
}

TEST_F(ServerFixture, AttestedStepCarriesAReproducibleDigest)
{
    Fd fd = connect();
    HelloRequest hreq;
    hreq.params.columns = 4;
    hreq.params.rows = 4;
    hello(fd, hreq);

    auto attestedStep = [&](Tick target) {
        StepRequest req;
        req.target = target;
        req.attest = true;
        ArchiveWriter aw = beginMessage(MsgType::Step);
        encodeStep(aw, req);
        Message rep = call(fd, std::move(aw));
        EXPECT_EQ(rep.type, MsgType::StepReply);
        std::uint8_t flags = 0;
        std::uint64_t digest = 0;
        decodeStepReply(rep.ar, flags, &digest);
        rep.done();
        EXPECT_TRUE(flags & step_flag_attested);
        return digest;
    };

    std::uint64_t d1 = attestedStep(1000);
    EXPECT_NE(d1, 0u);
    // An idle re-attest at the same tick must reproduce the digest
    // (nothing moved), and it must equal the checkpoint image's own
    // digest — they attest the same serialized state.
    std::uint64_t d2 = attestedStep(1000);
    EXPECT_EQ(d1, d2);
    Message ck = call(fd, beginMessage(MsgType::CkptSave));
    ASSERT_EQ(ck.type, MsgType::CkptData);
    CkptReply saved = decodeCkptReply(ck.ar);
    ck.done();
    EXPECT_EQ(saved.digest, d1);
    // Advancing the clock changes the serialized state, so the digest
    // must move too.
    std::uint64_t d3 = attestedStep(2000);
    EXPECT_NE(d3, d1);
}

TEST_F(ServerFixture, ServerSurvivesAVanishedClient)
{
    {
        Fd fd = connect();
        HelloRequest req;
        hello(fd, req);
        // fd drops here, mid-session.
    }
    // A fresh client gets a fresh, working session.
    Fd fd = connect();
    HelloRequest req;
    req.params.columns = 4;
    req.params.rows = 4;
    HelloReply hr = hello(fd, req);
    EXPECT_EQ(hr.num_nodes, 16u);
    AdvanceReply rep = advance(fd, 100);
    EXPECT_EQ(rep.cur_time, 100u);
}

// The differential tests drive speculation through RemoteNetwork, but
// their workloads drain within a quantum, so the predictor rarely
// arms. This test forces both speculation outcomes deterministically:
// the client sleeps between quanta, guaranteeing the server's
// readable() poll sees an empty socket and the predicted quantum
// actually executes. A matching Step must then be answered from the
// pre-sealed frame (spec_hit), a mismatched one must roll the session
// back first (rebased) — and in both cases every reply and the final
// stats tree must be bit-identical to a session that declined
// speculation entirely.
TEST_F(ServerFixture, SpeculationHitAndRebaseAreBitIdentical)
{
    auto burst = [] {
        // Enough traffic that a 4x4 mesh stays busy well past tick
        // 100 with 20-tick quanta (same shape as the mid-speculation
        // kill test in remote_equivalence_test).
        std::vector<noc::PacketPtr> pkts;
        for (int i = 0; i < 256; ++i)
            pkts.push_back(noc::makePacket(
                static_cast<PacketId>(i + 1), i % 16, (i * 7 + 3) % 16,
                noc::MsgClass::Request, 64, 5));
        return pkts;
    };
    auto summarize = [](const AdvanceReply &r) {
        std::ostringstream os;
        os << r.cur_time << '/' << r.idle << '/' << r.injected << '/'
           << r.delivered << '/' << r.in_flight;
        for (const auto &p : r.deliveries)
            os << ' ' << p->id << ':' << p->deliver_tick << ':'
               << p->hops;
        return os.str();
    };
    HelloRequest hreq;
    hreq.params.columns = 4;
    hreq.params.rows = 4;
    // Quantum schedule: inject burst -> three drain quanta -> one
    // off-stride quantum (90, where the predictor will expect 100).
    const std::vector<Tick> targets = {20, 40, 60, 80, 90};

    // Reference session: identical requests, speculation declined.
    std::vector<std::string> ref;
    std::vector<StatRow> ref_stats;
    {
        Fd fd = connect();
        hello(fd, hreq);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            auto [rep, flags] = step(
                fd, targets[i], false,
                i == 0 ? burst() : std::vector<noc::PacketPtr>{});
            EXPECT_EQ(flags & (step_flag_spec_hit | step_flag_rebased),
                      0)
                << "server speculated against the client's wishes";
            ref.push_back(summarize(rep));
            EXPECT_FALSE(rep.idle) << "workload drained too early at "
                                   << targets[i];
        }
        ref_stats = statsRows(fd);
    }
    const std::uint64_t hits_before = server_->counters().spec_hits;
    const std::uint64_t rebases_before =
        server_->counters().spec_rebases;

    // Speculative session: the sleep before each Step guarantees the
    // server's gap, so after the first drain-shaped quantum (40) the
    // predicted quantum provably runs.
    Fd fd = connect();
    hello(fd, hreq);
    std::vector<std::uint8_t> flags_seen;
    for (std::size_t i = 0; i < targets.size(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        auto [rep, flags] = step(
            fd, targets[i], true,
            i == 0 ? burst() : std::vector<noc::PacketPtr>{});
        flags_seen.push_back(flags);
        EXPECT_EQ(summarize(rep), ref[i])
            << "speculative reply diverged at target " << targets[i];
    }
    // Steps 60 and 80 match the prediction armed by the preceding
    // drain quantum; 90 breaks the stride while a speculation to 100
    // sits completed, forcing the rebase path.
    EXPECT_TRUE(flags_seen[2] & step_flag_spec_hit);
    EXPECT_TRUE(flags_seen[3] & step_flag_spec_hit);
    EXPECT_TRUE(flags_seen[4] & step_flag_rebased);
    EXPECT_FALSE(flags_seen[4] & step_flag_spec_hit);

    // The rebased session's statistics — including per-router flit
    // counts — must match the unspeculated reference exactly.
    EXPECT_EQ(statsRows(fd), ref_stats);
    EXPECT_GE(server_->counters().spec_hits, hits_before + 2);
    EXPECT_GE(server_->counters().spec_rebases, rebases_before + 1);
}

} // namespace
