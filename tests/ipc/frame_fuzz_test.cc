/**
 * @file
 * Seeded fuzz suite for the quantum-RPC frame decoder and payload
 * codecs. The contract under test: NO byte sequence off the wire may
 * crash, hang, or be silently accepted as something it is not — every
 * malformed input surfaces as a typed SimError, because that is what
 * lets the co-simulation health machinery quarantine a sick peer
 * instead of dying with it.
 *
 * Two layers:
 *
 *  - a deterministic mutation fuzzer (truncate, bit-flip, splice,
 *    forged length, duplicated length prefix, and CRC-corrected body
 *    corruption that reaches the post-checksum decode paths) driven
 *    over a corpus containing one valid frame of every message type;
 *
 *  - targeted "liar frames" that are CRC-valid but structurally
 *    dishonest (wrong body for the type, unknown type, truncated
 *    body, trailing bytes, forged element counts, out-of-range error
 *    kinds), each pinned to its expected typed refusal.
 *
 * Everything is seeded and deterministic, so a failure reproduces.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <sys/socket.h>

#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/frame.hh"
#include "ipc/protocol.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace
{

using namespace rasim;
using namespace rasim::ipc;

/** A connected AF_UNIX stream pair wrapped in RAII fds. */
std::pair<Fd, Fd>
makePair()
{
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    return {Fd(sv[0]), Fd(sv[1])};
}

noc::NocParams
smallMesh()
{
    noc::NocParams p;
    p.columns = 4;
    p.rows = 4;
    return p;
}

abstractnet::LatencyTable
protoTable()
{
    noc::NocParams p = smallMesh();
    return abstractnet::LatencyTable(
        p, p.columns + p.rows + 2, 0.05,
        abstractnet::LatencyTable::Granularity::Distance, p.numNodes());
}

std::vector<noc::PacketPtr>
somePackets()
{
    std::vector<noc::PacketPtr> pkts;
    pkts.push_back(
        noc::makePacket(1, 0, 15, noc::MsgClass::Request, 8, 100));
    pkts.push_back(
        noc::makePacket(2, 5, 10, noc::MsgClass::Response, 72, 104));
    pkts.push_back(
        noc::makePacket(3, 9, 3, noc::MsgClass::Forward, 16, 110));
    return pkts;
}

/** One valid wire frame (header + payload) per message type: the
 *  fuzzer's corpus. Every decoder is reachable from here. */
std::vector<std::string>
buildCorpus()
{
    std::vector<std::string> corpus;
    auto add = [&](ArchiveWriter &&aw) {
        corpus.push_back(sealFrame(std::move(aw)));
    };

    {
        HelloRequest req;
        req.model = "cycle";
        req.params = smallMesh();
        req.start_tick = 4096;
        ArchiveWriter aw = beginMessage(MsgType::Hello);
        encodeHello(aw, req);
        add(std::move(aw));
    }
    {
        ArchiveWriter aw = beginMessage(MsgType::InjectBatch);
        encodePackets(aw, somePackets());
        add(std::move(aw));
    }
    {
        ArchiveWriter aw = beginMessage(MsgType::Advance);
        encodeAdvance(aw, 8192);
        add(std::move(aw));
    }
    {
        StepRequest req;
        req.target = 12288;
        req.speculate = true;
        req.packets = somePackets();
        ArchiveWriter aw = beginMessage(MsgType::Step);
        encodeStep(aw, req);
        add(std::move(aw));
    }
    add(beginMessage(MsgType::TableGet));
    add(beginMessage(MsgType::StatsGet));
    add(beginMessage(MsgType::CkptSave));
    {
        ArchiveWriter aw = beginMessage(MsgType::CkptLoad);
        aw.putString("opaque checkpoint image bytes");
        add(std::move(aw));
    }
    add(beginMessage(MsgType::Bye));
    {
        HelloReply rep;
        rep.num_nodes = 16;
        rep.cur_time = 4096;
        ArchiveWriter aw = beginMessage(MsgType::HelloAck);
        encodeHelloReply(aw, rep);
        add(std::move(aw));
    }
    {
        AdvanceReply rep;
        rep.cur_time = 8192;
        rep.idle = false;
        rep.injected = 3;
        rep.delivered = 3;
        rep.deliveries = somePackets();
        ArchiveWriter aw = beginMessage(MsgType::DeliveryBatch);
        encodeAdvanceReply(aw, rep);
        add(std::move(aw));
        ArchiveWriter aw2 = beginMessage(MsgType::StepReply);
        encodeStepReply(aw2, rep, step_flag_spec_hit);
        add(std::move(aw2));
    }
    {
        ArchiveWriter aw = beginMessage(MsgType::TableData);
        protoTable().saveBinary(aw);
        add(std::move(aw));
    }
    {
        std::vector<StatRow> rows = {
            {"net.packets_delivered", "", 600.0},
            {"net.latency_vnet0", "samples", 200.0},
        };
        ArchiveWriter aw = beginMessage(MsgType::StatsData);
        encodeStatsReply(aw, rows);
        add(std::move(aw));
    }
    {
        ArchiveWriter aw = beginMessage(MsgType::CkptData);
        aw.putString("opaque checkpoint image bytes");
        add(std::move(aw));
    }
    {
        ArchiveWriter aw = beginMessage(MsgType::CkptLoadAck);
        aw.putU64(8192);
        add(std::move(aw));
    }
    {
        ArchiveWriter aw = beginMessage(MsgType::ErrorReply);
        encodeError(aw, ErrorKind::Deadlock, "synthetic trip");
        add(std::move(aw));
    }
    return corpus;
}

/** Consume a received message exactly the way the real endpoints
 *  would, so the fuzzer exercises production decode paths. */
void
decodeAs(Message &msg, const abstractnet::LatencyTable &proto)
{
    switch (msg.type) {
      case MsgType::Hello:
        decodeHello(msg.ar);
        break;
      case MsgType::InjectBatch:
        decodePackets(msg.ar);
        break;
      case MsgType::Advance:
        decodeAdvance(msg.ar);
        break;
      case MsgType::Step:
        decodeStep(msg.ar);
        break;
      case MsgType::CkptLoad:
      case MsgType::CkptData:
        decodeBlob(msg.ar);
        break;
      case MsgType::HelloAck:
        decodeHelloReply(msg.ar);
        break;
      case MsgType::DeliveryBatch:
        decodeAdvanceReply(msg.ar);
        break;
      case MsgType::StepReply: {
        std::uint8_t flags = 0;
        decodeStepReply(msg.ar, flags);
        break;
      }
      case MsgType::TableData: {
        // The client guards table restoration the same way.
        abstractnet::LatencyTable table = proto;
        logging::ThrowOnError guard;
        table.restoreBinary(msg.ar);
        break;
      }
      case MsgType::StatsData:
        decodeStatsReply(msg.ar);
        break;
      case MsgType::CkptLoadAck:
        decodeTick(msg.ar);
        break;
      case MsgType::ErrorReply:
        // Throws the decoded error by contract; a clean decode is a
        // typed SimError too, so nothing to distinguish here.
        throwDecodedError(msg.ar);
        break;
      default:
        // TableGet / StatsGet / CkptSave / Bye: empty payloads.
        break;
    }
    msg.done();
}

enum class Outcome
{
    Accepted,   ///< decoded as a well-formed message
    TypedError, ///< refused with a SimError (the contract)
    CleanEof    ///< mutation emptied the stream before a frame began
};

/** Push raw bytes through a socket and run the full receive+decode
 *  path. Anything but the three outcomes (crash, panic, hang) fails
 *  the test by failing the process. */
Outcome
feed(const std::string &bytes, const abstractnet::LatencyTable &proto)
{
    auto [w, r] = makePair();
    if (!bytes.empty())
        sendAll(w, bytes.data(), bytes.size());
    w.reset(); // EOF after the mutated bytes: no mutation may hang
    try {
        auto msg = recvMessage(r, 5000.0);
        if (!msg)
            return Outcome::CleanEof;
        decodeAs(*msg, proto);
        return Outcome::Accepted;
    } catch (const SimError &) {
        return Outcome::TypedError;
    }
}

/** Re-seal the archive CRC trailer after corrupting payload bytes, so
 *  the mutation survives the checksum and reaches the decoders. */
void
resealCrc(std::string &frame)
{
    constexpr std::size_t header = 12;
    std::uint32_t crc = crc32(frame.data() + header,
                              frame.size() - header - sizeof(crc));
    std::memcpy(frame.data() + frame.size() - sizeof(crc), &crc,
                sizeof(crc));
}

std::string
mutate(const std::string &frame, const std::string &other,
       std::mt19937 &rng)
{
    std::string m = frame;
    switch (rng() % 6) {
      case 0: // truncate anywhere (header, length field, payload)
        m.resize(rng() % m.size());
        break;
      case 1: { // flip 1..8 random bits
        int flips = 1 + static_cast<int>(rng() % 8);
        for (int i = 0; i < flips; ++i)
            m[rng() % m.size()] ^=
                static_cast<char>(1u << (rng() % 8));
        break;
      }
      case 2: { // splice: prefix of one frame, suffix of another
        std::size_t cut_a = rng() % (m.size() + 1);
        std::size_t cut_b = rng() % (other.size() + 1);
        m = m.substr(0, cut_a) + other.substr(cut_b);
        break;
      }
      case 3: { // forge the length field (oversize or lying)
        std::uint64_t len = (rng() % 2)
                                ? max_frame_bytes + 1 + rng() % 4096
                                : rng() % (2 * m.size() + 16);
        std::memcpy(m.data() + 4, &len, sizeof(len));
        break;
      }
      case 4: { // duplicate the length prefix inside the payload
        m.insert(12, m.substr(4, 8));
        break;
      }
      case 5: { // CRC-corrected body corruption: reach past the
                // checksum into the structural decoders
        constexpr std::size_t skip = 12 + 12; // frame + archive header
        if (m.size() > skip + 8) {
            int n = 1 + static_cast<int>(rng() % 4);
            for (int i = 0; i < n; ++i) {
                std::size_t p = skip + rng() % (m.size() - skip - 4);
                m[p] ^= static_cast<char>(1 + rng() % 255);
            }
            resealCrc(m);
        }
        break;
      }
    }
    return m;
}

TEST(FrameFuzz, UnmutatedCorpusIsAccepted)
{
    abstractnet::LatencyTable proto = protoTable();
    for (const std::string &frame : buildCorpus()) {
        Outcome out = feed(frame, proto);
        // ErrorReply decodes into a thrown SimError by design; every
        // other valid frame must be accepted as-is.
        EXPECT_TRUE(out == Outcome::Accepted ||
                    out == Outcome::TypedError);
        EXPECT_NE(out, Outcome::CleanEof);
    }
}

TEST(FrameFuzz, SeededMutationsNeverCrashHangOrMisdecode)
{
    auto corpus = buildCorpus();
    abstractnet::LatencyTable proto = protoTable();
    std::mt19937 rng(0xf0220ed1u);

    const int iterations = 1500;
    int accepted = 0, typed = 0, eof = 0;
    for (int i = 0; i < iterations; ++i) {
        const std::string &base = corpus[rng() % corpus.size()];
        const std::string &other = corpus[rng() % corpus.size()];
        switch (feed(mutate(base, other, rng), proto)) {
          case Outcome::Accepted:
            ++accepted;
            break;
          case Outcome::TypedError:
            ++typed;
            break;
          case Outcome::CleanEof:
            ++eof;
            break;
        }
    }
    // Reaching this line without a crash, panic, or hang is the real
    // assertion; the mix is a sanity check that the mutators actually
    // exercised the refusal paths (and that some mutations — benign
    // flips in slack bytes, CRC-corrected ones that stayed legal —
    // still decode).
    EXPECT_EQ(accepted + typed + eof, iterations);
    EXPECT_GT(typed, iterations / 4);
}

TEST(FrameFuzz, LyingTypeWithForeignBodyIsRefused)
{
    // CRC-valid frame claiming to be Hello but carrying an Advance
    // body: the structural decoder must refuse it as Transport.
    ArchiveWriter aw = beginMessage(MsgType::Hello);
    encodeAdvance(aw, 4096);
    std::string frame = sealFrame(std::move(aw));

    auto [w, r] = makePair();
    sendAll(w, frame.data(), frame.size());
    auto msg = recvMessage(r, 1000.0);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, MsgType::Hello);
    try {
        decodeHello(msg->ar);
        FAIL() << "foreign body decoded as a Hello";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport);
        EXPECT_NE(std::string(e.what()).find("malformed Hello"),
                  std::string::npos);
    }
}

TEST(FrameFuzz, UnknownMessageTypeIsRefusedAtReceive)
{
    // A type value no build speaks: refused before any payload decode
    // runs, with a hint that the peer may be newer.
    ArchiveWriter aw;
    aw.beginSection("msg");
    aw.putU32(57);
    std::string frame = sealFrame(std::move(aw));

    auto [w, r] = makePair();
    sendAll(w, frame.data(), frame.size());
    EXPECT_SIM_ERROR(recvMessage(r, 1000.0), "unknown message type");
}

TEST(FrameFuzz, ForgedPacketCountRefusedBeforeAllocation)
{
    // A count no legal frame could carry must be refused up front —
    // not answered with a multi-gigabyte reserve (bad_alloc/OOM).
    ArchiveWriter aw = beginMessage(MsgType::InjectBatch);
    aw.putU64(std::uint64_t(1) << 40);
    std::string frame = sealFrame(std::move(aw));

    auto [w, r] = makePair();
    sendAll(w, frame.data(), frame.size());
    auto msg = recvMessage(r, 1000.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_SIM_ERROR(decodePackets(msg->ar), "implausible packet count");
}

TEST(FrameFuzz, ForgedStatRowCountRefusedBeforeAllocation)
{
    ArchiveWriter aw = beginMessage(MsgType::StatsData);
    aw.putU64(std::uint64_t(1) << 40);
    std::string frame = sealFrame(std::move(aw));

    auto [w, r] = makePair();
    sendAll(w, frame.data(), frame.size());
    auto msg = recvMessage(r, 1000.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_SIM_ERROR(decodeStatsReply(msg->ar),
                     "implausible stat row count");
}

TEST(FrameFuzz, TrailingBytesRefusedByDone)
{
    // A structurally valid body followed by bytes this build does not
    // understand: silent acceptance would desynchronise the peers, so
    // done() must refuse.
    ArchiveWriter aw = beginMessage(MsgType::Advance);
    encodeAdvance(aw, 4096);
    aw.putU32(0xdead);
    std::string frame = sealFrame(std::move(aw));

    auto [w, r] = makePair();
    sendAll(w, frame.data(), frame.size());
    auto msg = recvMessage(r, 1000.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(decodeAdvance(msg->ar), 4096u);
    EXPECT_SIM_ERROR(msg->done(), "malformed message payload");
}

TEST(FrameFuzz, TruncatedBodyIsRefused)
{
    // Half a Hello: the decoder runs out of fields mid-struct.
    ArchiveWriter aw = beginMessage(MsgType::Hello);
    aw.putU32(protocol_version);
    aw.putString("cycle");
    std::string frame = sealFrame(std::move(aw));

    auto [w, r] = makePair();
    sendAll(w, frame.data(), frame.size());
    auto msg = recvMessage(r, 1000.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_SIM_ERROR(decodeHello(msg->ar), "malformed Hello");
}

TEST(FrameFuzz, OutOfRangeErrorKindClampsToTransport)
{
    // A peer reporting an ErrorKind this build cannot name must fold
    // to Transport, not be cast into an out-of-range enum.
    ArchiveWriter aw = beginMessage(MsgType::ErrorReply);
    encodeError(aw, static_cast<ErrorKind>(99), "from the future");
    std::string frame = sealFrame(std::move(aw));

    auto [w, r] = makePair();
    sendAll(w, frame.data(), frame.size());
    auto msg = recvMessage(r, 1000.0);
    ASSERT_TRUE(msg.has_value());
    try {
        throwDecodedError(msg->ar);
        FAIL() << "throwDecodedError returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Transport);
        EXPECT_NE(std::string(e.what()).find("from the future"),
                  std::string::npos);
    }
}

} // namespace
