/**
 * @file
 * Edge-case tests for the quantum-RPC framing and payload codecs:
 * every malformed input off the wire must surface as a typed SimError
 * — no crash, no hang — because that is the contract the co-simulation
 * health machinery relies on to quarantine a sick remote backend.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ipc/frame.hh"
#include "ipc/protocol.hh"
#include "sim/serialize.hh"

namespace
{

using namespace rasim;
using namespace rasim::ipc;

/** A connected AF_UNIX stream pair wrapped in RAII fds. */
std::pair<Fd, Fd>
makePair()
{
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    return {Fd(sv[0]), Fd(sv[1])};
}

/** Write raw bytes straight to the socket, bypassing the framing. */
void
rawWrite(const Fd &fd, const void *data, std::size_t len)
{
    ASSERT_EQ(::send(fd.get(), data, len, 0),
              static_cast<ssize_t>(len));
}

/** Seal a beginMessage() writer into the frame payload it would put on
 *  the wire (what sendMessage does before prefixing the header). */
std::string
sealPayload(ArchiveWriter &&aw)
{
    aw.endSection();
    return aw.finish();
}

/** The 12-byte frame header for a payload of @p len bytes. */
std::string
frameHeader(std::uint64_t len)
{
    std::string h(frame_magic, sizeof(frame_magic));
    h.append(reinterpret_cast<const char *>(&len), sizeof(len));
    return h;
}

TEST(Frame, RoundTrip)
{
    auto [a, b] = makePair();
    ArchiveWriter aw = beginMessage(MsgType::Advance);
    encodeAdvance(aw, 4096);
    sendMessage(a, std::move(aw));

    auto msg = recvMessage(b, 1000.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, MsgType::Advance);
    EXPECT_EQ(decodeAdvance(msg->ar), 4096u);
    msg->done();
}

TEST(Frame, CleanEofAtBoundaryIsNotAnError)
{
    auto [a, b] = makePair();
    a.reset(); // peer closes between frames
    auto msg = recvMessage(b, 1000.0);
    EXPECT_FALSE(msg.has_value());
}

TEST(Frame, ShortReadInsideHeader)
{
    auto [a, b] = makePair();
    rawWrite(a, frame_magic, 3); // 3 of 12 header bytes, then gone
    a.reset();
    EXPECT_SIM_ERROR(recvMessage(b, 1000.0), "short read");
}

TEST(Frame, BadMagicDesynchronised)
{
    auto [a, b] = makePair();
    std::string junk = "JUNKJUNKJUNK"; // 12 bytes, wrong magic
    rawWrite(a, junk.data(), junk.size());
    EXPECT_SIM_ERROR(recvMessage(b, 1000.0), "bad frame magic");
}

TEST(Frame, OversizedPayloadRejected)
{
    auto [a, b] = makePair();
    std::string h = frameHeader(max_frame_bytes + 1);
    rawWrite(a, h.data(), h.size());
    EXPECT_SIM_ERROR(recvMessage(b, 1000.0), "oversized frame");
}

TEST(Frame, TornFramePeerDiedMidPayload)
{
    auto [a, b] = makePair();
    std::string h = frameHeader(100);
    rawWrite(a, h.data(), h.size());
    rawWrite(a, "0123456789", 10); // 10 of 100 payload bytes
    a.reset();
    EXPECT_SIM_ERROR(recvMessage(b, 1000.0), "torn frame");
}

TEST(Frame, CrcFailureDetected)
{
    auto [a, b] = makePair();
    ArchiveWriter aw = beginMessage(MsgType::Bye);
    aw.putString("payload worth protecting");
    std::string payload = sealPayload(std::move(aw));
    payload[payload.size() / 2] ^= 0x20; // one flipped body bit

    std::string h = frameHeader(payload.size());
    rawWrite(a, h.data(), h.size());
    rawWrite(a, payload.data(), payload.size());
    EXPECT_SIM_ERROR(recvMessage(b, 1000.0), "CRC mismatch");
}

TEST(Frame, ArchiveVersionMismatchDetected)
{
    auto [a, b] = makePair();
    ArchiveWriter aw = beginMessage(MsgType::Bye);
    std::string payload = sealPayload(std::move(aw));

    // Patch the archive format version (right after the 8-byte magic)
    // and re-seal the CRC trailer so only the version is wrong.
    std::uint32_t bogus = 99;
    std::memcpy(payload.data() + 8, &bogus, sizeof(bogus));
    std::uint32_t crc =
        crc32(payload.data(), payload.size() - sizeof(crc));
    std::memcpy(payload.data() + payload.size() - sizeof(crc), &crc,
                sizeof(crc));

    std::string h = frameHeader(payload.size());
    rawWrite(a, h.data(), h.size());
    rawWrite(a, payload.data(), payload.size());
    EXPECT_SIM_ERROR(recvMessage(b, 1000.0),
                     "unsupported archive version");
}

TEST(Frame, SilentPeerHitsDeadline)
{
    auto [a, b] = makePair();
    auto start = std::chrono::steady_clock::now();
    EXPECT_SIM_ERROR(recvMessage(b, 30.0), "timed out");
    double waited = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    EXPECT_LT(waited, 5000.0); // bounded, not a hang
}

TEST(Frame, AbortFlagStopsReceive)
{
    auto [a, b] = makePair();
    std::atomic<bool> abort{false};
    std::thread poker([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        abort.store(true);
    });
    EXPECT_SIM_ERROR(recvMessage(b, 0.0, &abort), "aborted");
    poker.join();
}

TEST(Protocol, HelloRoundTrip)
{
    auto [a, b] = makePair();
    HelloRequest req;
    req.model = "deflection";
    req.params.columns = 6;
    req.params.rows = 5;
    req.engine_workers = 4;
    req.start_tick = 12345;
    req.table_alpha = 0.125;
    req.table_pair_granularity = true;
    req.table_max_hops = 11;

    ArchiveWriter aw = beginMessage(MsgType::Hello);
    encodeHello(aw, req);
    sendMessage(a, std::move(aw));

    auto msg = recvMessage(b, 1000.0);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, MsgType::Hello);
    HelloRequest got = decodeHello(msg->ar);
    msg->done();
    EXPECT_EQ(got.proto, protocol_version);
    EXPECT_EQ(got.model, "deflection");
    EXPECT_EQ(got.params.columns, 6);
    EXPECT_EQ(got.params.rows, 5);
    EXPECT_EQ(got.engine_workers, 4);
    EXPECT_EQ(got.start_tick, 12345u);
    EXPECT_DOUBLE_EQ(got.table_alpha, 0.125);
    EXPECT_TRUE(got.table_pair_granularity);
    EXPECT_EQ(got.table_max_hops, 11);
}

TEST(Protocol, PacketBatchRoundTrip)
{
    auto [a, b] = makePair();
    std::vector<noc::PacketPtr> pkts;
    pkts.push_back(
        noc::makePacket(7, 1, 14, noc::MsgClass::Request, 8, 100));
    pkts.push_back(
        noc::makePacket(8, 3, 0, noc::MsgClass::Response, 72, 105));

    ArchiveWriter aw = beginMessage(MsgType::InjectBatch);
    encodePackets(aw, pkts);
    sendMessage(a, std::move(aw));

    auto msg = recvMessage(b, 1000.0);
    ASSERT_TRUE(msg.has_value());
    std::vector<noc::PacketPtr> got = decodePackets(msg->ar);
    msg->done();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0]->id, 7u);
    EXPECT_EQ(got[0]->dst, 14u);
    EXPECT_EQ(got[1]->cls, noc::MsgClass::Response);
    EXPECT_EQ(got[1]->size_bytes, 72u);
    EXPECT_EQ(got[1]->inject_tick, 105u);
}

TEST(Protocol, ErrorReplyRethrowsOriginalKind)
{
    auto [a, b] = makePair();
    ArchiveWriter aw = beginMessage(MsgType::ErrorReply);
    encodeError(aw, ErrorKind::Deadlock, "router wedged at tick 42");
    sendMessage(a, std::move(aw));

    auto msg = recvMessage(b, 1000.0);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, MsgType::ErrorReply);
    try {
        throwDecodedError(msg->ar);
        FAIL() << "throwDecodedError returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Deadlock);
        EXPECT_NE(std::string(e.what()).find("router wedged"),
                  std::string::npos);
    }
}

TEST(Protocol, StatsReplyRoundTrip)
{
    auto [a, b] = makePair();
    std::vector<StatRow> rows = {
        {"net.packets_delivered", "", 600.0},
        {"net.latency_vnet0", "samples", 200.0},
    };
    ArchiveWriter aw = beginMessage(MsgType::StatsData);
    encodeStatsReply(aw, rows);
    sendMessage(a, std::move(aw));

    auto msg = recvMessage(b, 1000.0);
    ASSERT_TRUE(msg.has_value());
    std::vector<StatRow> got = decodeStatsReply(msg->ar);
    msg->done();
    EXPECT_EQ(got, rows);
}

} // namespace
