/**
 * @file
 * Unit tests of the deterministic retry machinery: the backoff
 * sequence as a pure function of seed and failure pattern, the
 * attempt/deadline budgets, the circuit breaker's one-probe regime,
 * and the transport fault schedule's reproducibility guarantees —
 * plus config hygiene for the new key families.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/expect_error.hh"
#include "ipc/retry.hh"
#include "sim/config.hh"
#include "sim/fault_injector.hh"
#include "sim/rng.hh"

namespace
{

using namespace rasim;
using namespace rasim::ipc;

/** Tiny budgets so the sleeps inside backoff() stay negligible. */
RetryOptions
fastOptions()
{
    RetryOptions o;
    o.max_attempts = 5;
    o.backoff_base_ms = 0.01;
    o.backoff_multiplier = 4.0;
    o.backoff_max_ms = 0.16;
    o.jitter = 0.5;
    o.deadline_ms = 0.0;
    o.breaker_failures = 0;
    return o;
}

/** Drive @p rounds full rounds of @p fails failures each, collecting
 *  every backoff. */
std::vector<double>
backoffTrace(RetryPolicy &p, int rounds, int fails)
{
    std::vector<double> trace;
    for (int r = 0; r < rounds; ++r) {
        p.beginRound();
        for (int f = 0; f < fails; ++f) {
            p.noteFailure();
            if (!p.shouldRetry())
                break;
            trace.push_back(p.backoff());
        }
        p.noteSuccess();
    }
    return trace;
}

TEST(RetryPolicy, BackoffSequenceIsAPureFunctionOfTheSeed)
{
    RetryPolicy a(fastOptions(), Rng(0x1234, 7));
    RetryPolicy b(fastOptions(), Rng(0x1234, 7));
    auto ta = backoffTrace(a, 6, 3);
    auto tb = backoffTrace(b, 6, 3);
    ASSERT_FALSE(ta.empty());
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(a.retries(), b.retries());
    EXPECT_DOUBLE_EQ(a.backoffMsTotal(), b.backoffMsTotal());

    // A different stream of the same seed is a different sequence.
    RetryPolicy c(fastOptions(), Rng(0x1234, 8));
    EXPECT_NE(backoffTrace(c, 6, 3), ta);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps)
{
    RetryOptions o = fastOptions();
    o.jitter = 0.0; // exact nominal values
    o.max_attempts = 6;
    RetryPolicy p(o, Rng(1, 1));
    p.beginRound();
    std::vector<double> got;
    for (int f = 0; f < 5; ++f) {
        p.noteFailure();
        ASSERT_TRUE(p.shouldRetry());
        got.push_back(p.backoff());
    }
    // 0.01, 0.04, 0.16, then the 0.16 ceiling binds.
    ASSERT_EQ(got.size(), 5u);
    EXPECT_DOUBLE_EQ(got[0], 0.01);
    EXPECT_DOUBLE_EQ(got[1], 0.04);
    EXPECT_DOUBLE_EQ(got[2], 0.16);
    EXPECT_DOUBLE_EQ(got[3], 0.16);
    EXPECT_DOUBLE_EQ(got[4], 0.16);
}

TEST(RetryPolicy, JitterStaysInsideItsBand)
{
    RetryOptions o = fastOptions();
    o.jitter = 0.5;
    o.backoff_multiplier = 1.0;
    o.backoff_base_ms = 0.1;
    o.backoff_max_ms = 0.1;
    o.max_attempts = 50;
    RetryPolicy p(o, Rng(0xfeed, 2));
    p.beginRound();
    for (int f = 0; f < 40; ++f) {
        p.noteFailure();
        double ms = p.backoff();
        EXPECT_GE(ms, 0.05);
        EXPECT_LT(ms, 0.1 + 1e-12);
    }
}

TEST(RetryPolicy, AttemptCapEndsTheRound)
{
    RetryOptions o = fastOptions();
    o.max_attempts = 3;
    RetryPolicy p(o, Rng(1, 1));
    p.beginRound();
    p.noteFailure();
    EXPECT_TRUE(p.shouldRetry());
    p.noteFailure();
    EXPECT_TRUE(p.shouldRetry());
    p.noteFailure();
    EXPECT_FALSE(p.shouldRetry()) << "3 failed attempts of 3 allowed";
}

TEST(RetryPolicy, DeadlineBindsAndCapsConnectBudgets)
{
    RetryOptions o = fastOptions();
    o.deadline_ms = 40.0;
    RetryPolicy p(o, Rng(1, 1));
    p.beginRound();
    EXPECT_LE(p.capToDeadline(5000.0), 40.0);
    EXPECT_DOUBLE_EQ(p.capToDeadline(1.5), 1.5);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    p.noteFailure();
    EXPECT_FALSE(p.shouldRetry()) << "the round's deadline is spent";
    // Even with the budget spent, a capped connect gets its 1 ms
    // floor instead of a zero/negative timeout.
    EXPECT_DOUBLE_EQ(p.capToDeadline(5000.0), 1.0);

    // deadline_ms=0 is the bit-reproducible mode: nothing is capped.
    RetryPolicy q(fastOptions(), Rng(1, 1));
    q.beginRound();
    EXPECT_DOUBLE_EQ(q.capToDeadline(5000.0), 5000.0);
}

TEST(RetryPolicy, BreakerOpensAfterConsecutiveExhaustedRounds)
{
    RetryOptions o = fastOptions();
    o.breaker_failures = 2;
    RetryPolicy p(o, Rng(1, 1));

    for (int r = 0; r < 2; ++r) {
        p.beginRound();
        while (true) {
            p.noteFailure();
            if (!p.shouldRetry())
                break;
            p.backoff();
        }
        p.noteRoundFailed();
    }
    EXPECT_TRUE(p.breakerOpen());
    EXPECT_EQ(p.breakerTrips(), 1u);

    // Open breaker: exactly one probe per round, no backoff storm.
    p.beginRound();
    p.noteFailure();
    EXPECT_FALSE(p.shouldRetry());
    p.noteRoundFailed();
    EXPECT_EQ(p.breakerTrips(), 1u) << "an open breaker trips once";

    // The first successful probe closes it again.
    p.beginRound();
    p.noteSuccess();
    EXPECT_FALSE(p.breakerOpen());
}

/** Exhaust one round against @p scope (max_attempts failures). */
void
exhaustRound(RetryPolicy &p, std::size_t scope)
{
    p.beginRound();
    while (true) {
        p.noteFailure();
        if (!p.shouldRetry())
            break;
        p.backoff();
    }
    p.noteRoundFailed(scope);
}

TEST(RetryPolicy, BreakerIsScopedPerEndpoint)
{
    RetryOptions o = fastOptions();
    o.breaker_failures = 2;
    RetryPolicy p(o, Rng(1, 1));
    p.setScopes(2);
    ASSERT_EQ(p.scopes(), 2u);

    // The primary (scope 0) dies repeatedly and trips its breaker.
    exhaustRound(p, 0);
    exhaustRound(p, 0);
    EXPECT_TRUE(p.breakerOpen(0));
    EXPECT_FALSE(p.breakerOpen(1)) << "the standby never failed";
    EXPECT_EQ(p.breakerTrips(), 1u);

    // This is the regression the scoping exists for: a dead primary's
    // open breaker must not deny the round that would fail over to
    // the healthy standby.
    p.beginRound();
    p.noteFailure();
    EXPECT_TRUE(p.shouldRetry())
        << "a healthy standby scope keeps the round alive";

    // A success on the standby closes nothing of the primary's state.
    p.noteSuccess(1);
    EXPECT_TRUE(p.breakerOpen(0));
    EXPECT_FALSE(p.breakerOpen(1));

    // Only when every endpoint's breaker is open does the one-probe
    // regime kick in.
    exhaustRound(p, 1);
    exhaustRound(p, 1);
    EXPECT_TRUE(p.breakerAllOpen());
    EXPECT_EQ(p.breakerTrips(), 2u);
    p.beginRound();
    p.noteFailure();
    EXPECT_FALSE(p.shouldRetry()) << "all scopes open: one probe only";

    // And one probe succeeding anywhere reopens the path.
    p.noteSuccess(0);
    EXPECT_FALSE(p.breakerAllOpen());
    p.beginRound();
    p.noteFailure();
    EXPECT_TRUE(p.shouldRetry());
}

TEST(RetryPolicy, ScopeFreeCallsKeepLegacySingleEndpointBehaviour)
{
    RetryOptions o = fastOptions();
    o.breaker_failures = 1;
    RetryPolicy p(o, Rng(1, 1));
    // No setScopes() call: scope 0 is the only bucket, so the legacy
    // zero-arg API behaves exactly as the old global breaker did.
    exhaustRound(p, 0);
    EXPECT_TRUE(p.breakerOpen());
    EXPECT_TRUE(p.breakerAllOpen());
    p.noteSuccess();
    EXPECT_FALSE(p.breakerOpen());
}

TEST(RetryOptions, FromConfigReadsAndValidates)
{
    Config cfg;
    cfg.parseArg("network.remote.retry.max_attempts=7");
    cfg.parseArg("network.remote.retry.base_ms=2.5");
    cfg.parseArg("network.remote.retry.multiplier=3");
    cfg.parseArg("network.remote.retry.max_ms=80");
    cfg.parseArg("network.remote.retry.jitter=0.25");
    cfg.parseArg("network.remote.retry.deadline_ms=0");
    cfg.parseArg("network.remote.retry.breaker_failures=5");
    RetryOptions o = RetryOptions::fromConfig(cfg);
    EXPECT_EQ(o.max_attempts, 7u);
    EXPECT_DOUBLE_EQ(o.backoff_base_ms, 2.5);
    EXPECT_DOUBLE_EQ(o.backoff_multiplier, 3.0);
    EXPECT_DOUBLE_EQ(o.backoff_max_ms, 80.0);
    EXPECT_DOUBLE_EQ(o.jitter, 0.25);
    EXPECT_DOUBLE_EQ(o.deadline_ms, 0.0);
    EXPECT_EQ(o.breaker_failures, 5u);

    Config bad;
    bad.parseArg("network.remote.retry.max_attempts=0");
    EXPECT_SIM_ERROR(RetryOptions::fromConfig(bad), "at least 1");

    Config bad2;
    bad2.parseArg("network.remote.retry.jitter=1.5");
    EXPECT_SIM_ERROR(RetryOptions::fromConfig(bad2), "jitter");
}

TEST(TransportFaultOptions, FromConfigReadsAndValidates)
{
    Config cfg;
    cfg.parseArg("fault.transport.enabled=true");
    cfg.parseArg("fault.transport.seed=99");
    cfg.parseArg("fault.transport.torn_frame=0.25");
    cfg.parseArg("fault.transport.stall=0.1");
    cfg.parseArg("fault.transport.stall_ms=0.5");
    cfg.parseArg("fault.transport.start_op=12");
    cfg.parseArg("fault.transport.max_faults=3");
    cfg.parseArg("fault.transport.min_gap_ops=16");
    TransportFaultOptions o = TransportFaultOptions::fromConfig(cfg);
    EXPECT_TRUE(o.enabled);
    EXPECT_EQ(o.seed, 99u);
    EXPECT_DOUBLE_EQ(o.torn_frame, 0.25);
    EXPECT_DOUBLE_EQ(o.stall, 0.1);
    EXPECT_DOUBLE_EQ(o.stall_ms, 0.5);
    EXPECT_EQ(o.start_op, 12u);
    EXPECT_EQ(o.max_faults, 3u);
    EXPECT_EQ(o.min_gap_ops, 16u);

    Config bad;
    bad.parseArg("fault.transport.corrupt=2.0");
    EXPECT_SIM_ERROR(TransportFaultOptions::fromConfig(bad),
                     "probabilities");
}

/** A chaotic sequence of schedule queries, fixed across runs. */
std::vector<TransportFaultKind>
scheduleTrace(TransportFaultSchedule &s, int ops)
{
    std::vector<TransportFaultKind> trace;
    for (int i = 0; i < ops; ++i) {
        switch (i % 3) {
          case 0:
            trace.push_back(s.nextSend());
            break;
          case 1:
            trace.push_back(s.nextRecv(true));
            break;
          default:
            trace.push_back(s.nextRecv(false));
            break;
        }
    }
    return trace;
}

TEST(TransportFaultSchedule, SameSeedSameStreamSameFaults)
{
    TransportFaultOptions o;
    o.enabled = true;
    o.seed = 0xc0de;
    o.torn_frame = 0.05;
    o.short_read = 0.05;
    o.corrupt = 0.05;
    o.disconnect = 0.05;
    o.min_gap_ops = 4;
    TransportFaultSchedule a(o, 1);
    TransportFaultSchedule b(o, 1);
    auto ta = scheduleTrace(a, 3000);
    EXPECT_EQ(ta, scheduleTrace(b, 3000));
    EXPECT_EQ(a.faults(), b.faults());
    EXPECT_GT(a.faults(), 0u) << "the chaos never fired";

    // Another stream of the same seed (a second server session) is an
    // independent schedule.
    TransportFaultSchedule c(o, 2);
    EXPECT_NE(scheduleTrace(c, 3000), ta);
}

TEST(TransportFaultSchedule, StartOpGapAndCapAreHonoured)
{
    TransportFaultOptions o;
    o.enabled = true;
    o.seed = 7;
    o.torn_frame = 1.0; // every eligible op faults
    o.start_op = 10;
    o.min_gap_ops = 5;
    o.max_faults = 3;
    TransportFaultSchedule s(o, 1);
    auto trace = scheduleTrace(s, 60);

    std::uint64_t faults = 0;
    std::uint64_t last_fault = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i] == TransportFaultKind::None)
            continue;
        ++faults;
        EXPECT_GE(i, 10u) << "fault before start_op";
        if (faults > 1) {
            EXPECT_GT(i - last_fault, 5u) << "min_gap_ops violated";
        }
        last_fault = i;
    }
    EXPECT_EQ(faults, 3u) << "max_faults cap ignored";
    EXPECT_EQ(s.faults(), 3u);
    EXPECT_EQ(s.count(TransportFaultKind::TornFrame), 3u);
    EXPECT_EQ(s.ops(), 60u);
}

TEST(ConfigHygiene, MisspelledChaosAndRetryKeysStayUnread)
{
    Config cfg;
    cfg.parseArg("network.remote.retry.max_attemps=9"); // sic
    cfg.parseArg("fault.transport.torn_frmae=0.5");     // sic
    cfg.parseArg("network.remote.retry.base_ms=1");
    (void)RetryOptions::fromConfig(cfg);
    (void)TransportFaultOptions::fromConfig(cfg);
    // The misspellings were never read, so the warnUnread() pass in
    // FullSystem / rasim-nocd will name them instead of silently
    // falling back to defaults.
    auto unread_net = cfg.unreadKeysWithPrefix("network.");
    ASSERT_EQ(unread_net.size(), 1u);
    EXPECT_EQ(unread_net[0], "network.remote.retry.max_attemps");
    auto unread_fault = cfg.unreadKeysWithPrefix("fault.");
    ASSERT_EQ(unread_fault.size(), 1u);
    EXPECT_EQ(unread_fault[0], "fault.transport.torn_frmae");
}

} // namespace
