/**
 * @file
 * The chaos differential harness — the headline proof of the
 * fault-tolerance layer. A full remote co-simulation run under a
 * seeded transport fault schedule (torn frames, short reads, CRC
 * corruption, stalls, cold disconnects) must end *bit-identical* to
 * the fault-free in-process run: same deliveries in the same order,
 * same hosted-network statistics, same shadow-tuned LatencyTable.
 * Chaos, in other words, costs retries and wall-clock but never
 * results. On top of that: same-seed chaos runs reproduce the exact
 * retry counts and backoff totals; a primary killed mid-run fails
 * over to the warm standby and stays bit-identical; forced faults
 * are retried transparently; and an abort is never retried.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/faulty_transport.hh"
#include "ipc/nocd_server.hh"
#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "noc/remote/remote_network.hh"
#include "sim/rng.hh"
#include "sim/sim_error.hh"
#include "sim/simulation.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

struct Delivery
{
    PacketId id;
    Tick deliver_tick;
    Tick latency;
    std::uint32_t hops;

    bool operator==(const Delivery &o) const = default;
};

void
snapshotStats(const stats::Group &g,
              std::vector<std::tuple<std::string, std::string, double>>
                  &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.emplace_back(g.path() + "." + s->name(), sub, v);
    for (const stats::Group *c : g.children())
        snapshotStats(*c, out);
}

/** The same seeded traffic as the remote-equivalence harness. */
template <typename Net>
void
injectTraffic(Net &net, std::size_t nodes)
{
    Rng rng(0x6e7, 3);
    for (int i = 0; i < 600; ++i) {
        net.inject(makePacket(
            static_cast<PacketId>(i + 1),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<MsgClass>(rng.range(3)),
            rng.bernoulli(0.5) ? 8 : 64, static_cast<Tick>(i / 3)));
    }
}

abstractnet::LatencyTable
shadowTable(const NocParams &p)
{
    return abstractnet::LatencyTable(
        p, p.columns + p.rows + 2, 0.05,
        abstractnet::LatencyTable::Granularity::Distance, p.numNodes());
}

struct RunResult
{
    std::vector<Delivery> deliveries;
    std::vector<std::tuple<std::string, std::string, double>> stats;
    std::unique_ptr<abstractnet::LatencyTable> table;

    /// @name Health telemetry of a chaos run (volatile under chaos,
    /// but reproducible for one seed)
    /// @{
    std::uint64_t faults = 0;
    std::uint64_t sched_ops = 0;
    double retries = 0.0;
    double reconnects = 0.0;
    double failovers = 0.0;
    double backoff_ms = 0.0;
    std::string active_ep;
    /// @}
};

/** Ground truth: the network hosted in this process, no transport. */
template <typename Net>
RunResult
runDirect(const NocParams &p)
{
    Simulation sim;
    Net net(sim, "net", p);
    RunResult r;
    r.table =
        std::make_unique<abstractnet::LatencyTable>(shadowTable(p));
    net.setDeliveryHandler([&](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
        r.table->observe(static_cast<int>(pkt->cls),
                         static_cast<int>(pkt->hops),
                         p.flitsPerPacket(pkt->size_bytes),
                         pkt->latency(), pkt->src, pkt->dst);
    });
    injectTraffic(net, net.numNodes());
    for (Tick t = 1000; t <= 20000; t += 1000)
        net.advanceTo(t);
    EXPECT_TRUE(net.idle());
    snapshotStats(net, r.stats);
    return r;
}

/** A chaos schedule aggressive enough to fire through the whole run
 *  yet bounded so a deterministic retry budget always masks it. */
TransportFaultOptions
chaosPlan(std::uint64_t seed)
{
    TransportFaultOptions f;
    f.enabled = true;
    f.seed = seed;
    f.torn_frame = 0.04;
    f.short_read = 0.02;
    f.corrupt = 0.04;
    f.delay = 0.04;
    f.delay_ms = 0.05;
    f.stall = 0.02;
    f.stall_ms = 0.1;
    f.disconnect = 0.02;
    f.min_gap_ops = 6;
    f.max_faults = 12;
    return f;
}

/** Retry budgets for bit-reproducible chaos: no wall-clock deadline
 *  (the one nondeterministic input), tiny backoffs, generous attempt
 *  cap, breaker off so a fault streak cannot shed the lineage. */
ipc::RetryOptions
chaosRetry()
{
    ipc::RetryOptions r;
    r.max_attempts = 10;
    r.backoff_base_ms = 0.05;
    r.backoff_multiplier = 2.0;
    r.backoff_max_ms = 0.5;
    r.jitter = 0.5;
    r.deadline_ms = 0.0;
    r.breaker_failures = 0;
    return r;
}

/** The chaos run: the same traffic through a RemoteNetwork whose
 *  connection injects seeded faults. @p kill_after_quantum (if
 *  non-zero) stops @p to_kill at that quantum boundary — the primary
 *  dies mid-run and the client must fail over to the standby. */
RunResult
runChaos(const NocParams &p, remote::RemoteOptions ro,
         Tick kill_after_quantum = 0, ipc::NocServer *to_kill = nullptr,
         std::thread *kill_thread = nullptr)
{
    Simulation sim;
    remote::RemoteNetwork net(sim, "rnet", p, ro);
    RunResult r;
    net.setDeliveryHandler([&](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
    });
    injectTraffic(net, net.numNodes());
    for (Tick t = 1000; t <= 20000; t += 1000) {
        net.advanceTo(t);
        if (kill_after_quantum != 0 && t == kill_after_quantum) {
            to_kill->stop();
            kill_thread->join();
        }
    }
    EXPECT_TRUE(net.idle());
    r.stats = [&] {
        std::vector<std::tuple<std::string, std::string, double>> rows;
        for (const ipc::StatRow &row : net.fetchRemoteStats())
            rows.emplace_back(row.path, row.sub, row.value);
        return rows;
    }();
    r.table = std::make_unique<abstractnet::LatencyTable>(
        net.fetchTunedTable());
    r.faults = net.faultSchedule().faults();
    r.sched_ops = net.faultSchedule().ops();
    r.retries = net.retries.value();
    r.reconnects = net.reconnects.value();
    r.failovers = net.failovers.value();
    r.backoff_ms = net.backoffMsTotal.value();
    r.active_ep = net.activeEndpoint();
    return r;
}

void
expectSameResults(const RunResult &chaos, const RunResult &direct,
                  const char *what)
{
    ASSERT_EQ(chaos.deliveries.size(), direct.deliveries.size())
        << what;
    for (std::size_t k = 0; k < direct.deliveries.size(); ++k)
        ASSERT_TRUE(chaos.deliveries[k] == direct.deliveries[k])
            << what << " delivery #" << k << " packet "
            << direct.deliveries[k].id;
    ASSERT_EQ(chaos.stats, direct.stats) << what;
    EXPECT_TRUE(chaos.table->identicalTo(*direct.table)) << what;
}

class ChaosDifferential : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = "unix:/tmp/rasim-chaos-" + std::to_string(::getpid());
    }

    void
    TearDown() override
    {
        stopServer(0);
        stopServer(1);
    }

    std::string
    addr(int i) const
    {
        return base_ + "-" + std::to_string(i) + ".sock";
    }

    void
    startServer(int i)
    {
        ipc::NocServerOptions opts;
        opts.address = addr(i);
        servers_[i] = std::make_unique<ipc::NocServer>(opts);
        threads_[i] = std::thread([this, i] { servers_[i]->run(); });
    }

    void
    stopServer(int i)
    {
        if (!servers_[i])
            return;
        servers_[i]->stop();
        if (threads_[i].joinable())
            threads_[i].join();
        servers_[i].reset();
    }

    std::string base_;
    std::unique_ptr<ipc::NocServer> servers_[2];
    std::thread threads_[2];
};

template <typename Net>
void
chaosMatchesDirect(const std::string &addr, const std::string &model)
{
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    RunResult direct = runDirect<Net>(p);
    ASSERT_EQ(direct.deliveries.size(), 600u);

    remote::RemoteOptions ro;
    ro.socket = addr;
    ro.model = model;
    ro.fault = chaosPlan(0xc4a05);
    ro.retry = chaosRetry();
    ro.ckpt_quanta = 4; // short journals, frequent base refreshes
    RunResult chaos = runChaos(p, ro);

    EXPECT_GT(chaos.faults, 0u) << "the chaos plan never fired";
    EXPECT_GT(chaos.retries, 0.0);
    expectSameResults(chaos, direct, model.c_str());
}

TEST_F(ChaosDifferential, CycleRunUnderChaosIsBitIdentical)
{
    startServer(0);
    chaosMatchesDirect<CycleNetwork>(addr(0), "cycle");
}

TEST_F(ChaosDifferential, DeflectionRunUnderChaosIsBitIdentical)
{
    startServer(0);
    chaosMatchesDirect<DeflectionNetwork>(addr(0), "deflection");
}

TEST_F(ChaosDifferential, SameSeedChaosRunsAreExactlyReproducible)
{
    startServer(0);
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    remote::RemoteOptions ro;
    ro.socket = addr(0);
    ro.fault = chaosPlan(0x5eed);
    ro.retry = chaosRetry();
    ro.ckpt_quanta = 4;

    RunResult a = runChaos(p, ro);
    RunResult b = runChaos(p, ro);
    EXPECT_GT(a.faults, 0u);

    // Not just the simulation results: the whole failure-handling
    // trajectory — fault count, transport ops, retry count, even the
    // jittered backoff total — replays exactly.
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_TRUE(a.table->identicalTo(*b.table));
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.sched_ops, b.sched_ops);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.reconnects, b.reconnects);
    EXPECT_DOUBLE_EQ(a.backoff_ms, b.backoff_ms);

    // A different seed is a different chaos trajectory (while the
    // simulation results stay identical regardless).
    remote::RemoteOptions other = ro;
    other.fault.seed = 0x0dd;
    RunResult c = runChaos(p, other);
    EXPECT_EQ(c.deliveries, a.deliveries);
    EXPECT_NE(std::make_pair(c.sched_ops, c.faults),
              std::make_pair(a.sched_ops, a.faults));
}

template <typename Net>
void
failoverMatchesDirect(const std::string &primary,
                      const std::string &standby, const std::string &model,
                      ipc::NocServer *to_kill, std::thread *kill_thread)
{
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    RunResult direct = runDirect<Net>(p);

    remote::RemoteOptions ro;
    ro.socket = primary;
    ro.endpoints = {primary, standby};
    ro.model = model;
    ro.retry = chaosRetry();
    ro.ckpt_quanta = 1; // replicate to the standby every quantum
    // Primary dies right after the quantum at tick 2000, while the
    // fabric is still busy: the remaining 18 quanta run on the
    // standby, fast-forwarded from the replicated base image.
    RunResult failover = runChaos(p, ro, 2000, to_kill, kill_thread);

    expectSameResults(failover, direct, model.c_str());
    EXPECT_GE(failover.failovers, 1.0);
    EXPECT_GE(failover.reconnects, 1.0);
    EXPECT_EQ(failover.active_ep, standby)
        << "the run did not end on the standby";
}

TEST_F(ChaosDifferential, PrimaryKilledMidRunFailsOverBitIdentically)
{
    startServer(0);
    startServer(1);
    failoverMatchesDirect<CycleNetwork>(addr(0), addr(1), "cycle",
                                        servers_[0].get(), &threads_[0]);
    servers_[0].reset();
}

TEST_F(ChaosDifferential,
       DeflectionPrimaryKilledMidRunFailsOverBitIdentically)
{
    startServer(0);
    startServer(1);
    failoverMatchesDirect<DeflectionNetwork>(addr(0), addr(1),
                                             "deflection",
                                             servers_[0].get(),
                                             &threads_[0]);
    servers_[0].reset();
}

TEST_F(ChaosDifferential, ForcedFaultsAreRetriedTransparently)
{
    startServer(0);
    NocParams p;
    p.columns = 4;
    p.rows = 4;
    Simulation sim;
    remote::RemoteOptions ro;
    ro.socket = addr(0);
    ro.retry = chaosRetry();
    ro.fault = TransportFaultOptions{};
    ro.fault.enabled = true; // all probabilities zero: forced only
    remote::RemoteNetwork net(sim, "rnet", p, ro);
    ASSERT_NE(net.faultyChannel(), nullptr);

    // A cold disconnect before the quantum's send: one retry round
    // reconnects, replays and completes — the caller never notices.
    net.inject(makePacket(1, 0, 15, MsgClass::Request, 8, 10));
    net.faultyChannel()->failNextSend(TransportFaultKind::Disconnect);
    net.advanceTo(1000);
    EXPECT_EQ(net.deliveredCount(), 1u);
    EXPECT_EQ(net.retries.value(), 1.0);
    EXPECT_EQ(net.reconnects.value(), 1.0);

    // A stalled reply (Timeout kind) is just as retryable.
    net.inject(makePacket(2, 1, 14, MsgClass::Request, 8, 1500));
    net.faultyChannel()->failNextRecv(TransportFaultKind::Stall);
    net.advanceTo(2000);
    EXPECT_EQ(net.deliveredCount(), 2u);
    EXPECT_EQ(net.retries.value(), 2.0);
    EXPECT_TRUE(net.connected());
}

TEST_F(ChaosDifferential, AbortIsSurfacedImmediatelyNotRetried)
{
    startServer(0);
    NocParams p;
    p.columns = 4;
    p.rows = 4;
    Simulation sim;
    remote::RemoteOptions ro;
    ro.socket = addr(0);
    ro.retry = chaosRetry();
    remote::RemoteNetwork net(sim, "rnet", p, ro);

    net.inject(makePacket(1, 0, 15, MsgClass::Request, 8, 10));
    net.advanceTo(1000);

    // An abort requested before a transport round surfaces as a
    // Timeout on the *first* failure — no reconnect storm while the
    // simulation is being torn down.
    net.requestAbort();
    const double retries_before = net.retries.value();
    try {
        (void)net.fetchRemoteStats();
        FAIL() << "aborted readback succeeded";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Timeout) << e.what();
    }
    EXPECT_EQ(net.retries.value(), retries_before)
        << "an aborted operation was retried";

    // advanceTo() re-arms the abort flag, so the network recovers.
    net.inject(makePacket(2, 1, 14, MsgClass::Request, 8, 1500));
    net.advanceTo(2000);
    EXPECT_EQ(net.deliveredCount(), 1u) // giveUp reset the accounting
        << "fresh session accounting after an aborted readback";
}

} // namespace
