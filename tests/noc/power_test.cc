/**
 * @file
 * Tests for the activity-based NoC energy model.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include "noc/cycle_network.hh"
#include "noc/power.hh"
#include "sim/config.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

TEST(PowerModel, PricesActivityLinearly)
{
    PowerParams p;
    p.buffer_write_pj = 2.0;
    p.switch_traversal_pj = 3.0;
    p.link_traversal_pj = 5.0;
    p.static_mw_per_router = 0.0;
    NocPowerModel model(p);
    NocActivity a;
    a.buffer_writes = 10;
    a.switch_traversals = 20;
    a.link_traversals = 30;
    auto e = model.estimate(a);
    EXPECT_DOUBLE_EQ(e.buffer_pj, 20.0);
    EXPECT_DOUBLE_EQ(e.switch_pj, 60.0);
    EXPECT_DOUBLE_EQ(e.link_pj, 150.0);
    EXPECT_DOUBLE_EQ(e.totalPj(), 230.0);
}

TEST(PowerModel, StaticEnergyScalesWithTimeAndRouters)
{
    PowerParams p;
    p.buffer_write_pj = 0;
    p.switch_traversal_pj = 0;
    p.link_traversal_pj = 0;
    p.static_mw_per_router = 2.0;
    p.ns_per_cycle = 1.0;
    NocPowerModel model(p);
    NocActivity a;
    a.routers = 16;
    a.cycles = 1000;
    auto e = model.estimate(a);
    // 2 mW * 16 routers * 1000 ns = 32000 pJ.
    EXPECT_DOUBLE_EQ(e.static_pj, 32000.0);
}

TEST(PowerModel, AveragePowerFromEnergy)
{
    EnergyEstimate e;
    e.link_pj = 500.0;
    EXPECT_DOUBLE_EQ(e.averageMw(1000.0), 0.5);
    EXPECT_DOUBLE_EQ(e.averageMw(0.0), 0.0);
}

TEST(PowerModel, ActivityOfRealRun)
{
    Simulation sim;
    NocParams np;
    CycleNetwork net(sim, "noc", np);
    for (int i = 0; i < 50; ++i)
        net.inject(makePacket(static_cast<PacketId>(i + 1),
                              static_cast<NodeId>(i % 64),
                              static_cast<NodeId>((i * 13 + 1) % 64),
                              MsgClass::Request, 64,
                              static_cast<Tick>(i)));
    net.advanceTo(5000);
    NocActivity a = activityOf(net);
    EXPECT_EQ(a.routers, 64);
    EXPECT_GT(a.cycles, 0u);
    // Each flit is buffered once per traversed router and switches at
    // least once per router; link traversals exclude ejections.
    EXPECT_GT(a.buffer_writes, 0u);
    EXPECT_GE(a.switch_traversals, a.link_traversals);
    EXPECT_EQ(a.switch_traversals - a.link_traversals,
              static_cast<std::uint64_t>(
                  net.flitsDelivered.value())); // ejection traversals

    NocPowerModel model;
    auto e = model.estimate(a);
    EXPECT_GT(e.totalPj(), 0.0);
}

TEST(PowerModel, MoreTrafficMoreDynamicEnergy)
{
    auto energy = [](int packets) {
        Simulation sim;
        NocParams np;
        CycleNetwork net(sim, "noc", np);
        for (int i = 0; i < packets; ++i)
            net.inject(makePacket(
                static_cast<PacketId>(i + 1),
                static_cast<NodeId>(i % 64),
                static_cast<NodeId>((i * 7 + 3) % 64),
                MsgClass::Response, 64, static_cast<Tick>(i)));
        net.advanceTo(20000);
        PowerParams p;
        p.static_mw_per_router = 0.0;
        return NocPowerModel(p).estimate(activityOf(net)).totalPj();
    };
    EXPECT_GT(energy(400), 2.0 * energy(100));
}

TEST(PowerParams, ConfigOverridesAndValidation)
{
    Config cfg;
    cfg.set("power.link_traversal_pj", 9.5);
    auto p = PowerParams::fromConfig(cfg);
    EXPECT_DOUBLE_EQ(p.link_traversal_pj, 9.5);
    cfg.set("power.ns_per_cycle", -1.0);
    EXPECT_SIM_ERROR(PowerParams::fromConfig(cfg), "positive");
}

} // namespace
