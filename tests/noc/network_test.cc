/**
 * @file
 * End-to-end tests of the cycle-level network: delivery, zero-load
 * latency, serialisation, wormhole ordering, backpressure and idle
 * fast-forwarding.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <map>
#include <vector>

#include "noc/cycle_network.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

struct NetFixture
{
    explicit NetFixture(NocParams p = NocParams())
        : net(sim, "noc", p)
    {
        net.setDeliveryHandler(
            [this](const PacketPtr &pkt) { delivered.push_back(pkt); });
        next_id = 1;
    }

    PacketPtr
    send(NodeId src, NodeId dst, Tick when, std::uint32_t bytes = 8,
         MsgClass cls = MsgClass::Request)
    {
        auto pkt = makePacket(next_id++, src, dst, cls, bytes, when);
        net.inject(pkt);
        return pkt;
    }

    Simulation sim;
    CycleNetwork net;
    std::vector<PacketPtr> delivered;
    PacketId next_id;
};

TEST(CycleNetwork, DeliversSinglePacket)
{
    NetFixture f;
    auto pkt = f.send(0, 63, 0);
    f.net.advanceTo(200);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(f.delivered[0]->id, pkt->id);
    EXPECT_TRUE(f.net.idle());
    EXPECT_EQ(pkt->hops, 14u); // corner to corner on 8x8
}

TEST(CycleNetwork, ZeroLoadLatencyIsExact)
{
    // With pipeline_stages = P = 1 and link_latency = 1, a single-flit
    // packet over h router hops takes h + 2 cycles: NIC send at cycle
    // 0, one router traversal per cycle (h+1 routers including the
    // ejecting one), delivery visible the cycle after the tail ejects.
    // Locked here as a regression oracle; the abstract latency model
    // (E2/E5/E6) relies on these constants.
    NocParams p;
    p.pipeline_stages = 1;
    NetFixture f(p);
    auto a = f.send(0, 1, 0);  // 1 hop
    auto b = f.send(8, 10, 0); // 2 hops (same row)
    auto c = f.send(16, 16, 0); // self
    f.net.advanceTo(100);
    ASSERT_EQ(f.delivered.size(), 3u);
    EXPECT_EQ(c->latency(), 2u);     // h=0
    EXPECT_EQ(a->latency(), 3u);     // h=1
    EXPECT_EQ(b->latency(), 4u);     // h=2
}

TEST(CycleNetwork, PipelineStagesAddPerHopLatency)
{
    NocParams p1, p3;
    p1.pipeline_stages = 1;
    p3.pipeline_stages = 3;
    NetFixture f1(p1), f3(p3);
    auto a = f1.send(0, 3, 0); // 3 hops
    auto b = f3.send(0, 3, 0);
    f1.net.advanceTo(100);
    f3.net.advanceTo(100);
    // Each of the 4 router traversals pays the extra 2 cycles.
    EXPECT_EQ(b->latency() - a->latency(), 2u * 4u);
}

TEST(CycleNetwork, LinkLatencyAddsPerLink)
{
    NocParams p1, p2;
    p1.link_latency = 1;
    p2.link_latency = 2;
    NetFixture f1(p1), f2(p2);
    auto a = f1.send(0, 3, 0); // 3 router-router links
    auto b = f2.send(0, 3, 0);
    f1.net.advanceTo(100);
    f2.net.advanceTo(100);
    EXPECT_EQ(b->latency() - a->latency(), 3u);
}

TEST(CycleNetwork, MultiFlitSerialization)
{
    NocParams p;
    p.flit_bytes = 16;
    NetFixture f(p);
    auto small = f.send(0, 7, 0, 16);  // 1 flit
    auto big = f.send(56, 63, 0, 80);  // 5 flits, same hop count
    f.net.advanceTo(200);
    ASSERT_EQ(f.delivered.size(), 2u);
    EXPECT_EQ(big->latency() - small->latency(), 4u);
}

TEST(CycleNetwork, QueueLatencyAccountsSourceQueueing)
{
    // Two packets from the same node on the same vnet: the second
    // waits behind the first at the injection port.
    NetFixture f;
    auto a = f.send(0, 1, 0, 64); // 4 flits
    auto b = f.send(0, 1, 0, 64);
    f.net.advanceTo(200);
    EXPECT_EQ(a->queueLatency(), 0u);
    EXPECT_GE(b->queueLatency(), 3u);
    EXPECT_EQ(a->networkLatency(), b->networkLatency());
}

TEST(CycleNetwork, LatePacketTreatedAsNow)
{
    NetFixture f;
    f.net.advanceTo(50);
    auto pkt = f.send(0, 1, 10); // inject tick already in the past
    f.net.advanceTo(150);
    ASSERT_EQ(f.delivered.size(), 1u);
    // The 40-cycle slip appears as queueing latency.
    EXPECT_GE(pkt->queueLatency(), 40u);
}

TEST(CycleNetwork, VnetsDoNotShareVcs)
{
    // A request and a response from the same source proceed in
    // parallel on their own VCs; neither blocks the other.
    NetFixture f;
    auto a = f.send(0, 1, 0, 64, MsgClass::Request);
    auto b = f.send(0, 1, 0, 64, MsgClass::Response);
    f.net.advanceTo(200);
    ASSERT_EQ(f.delivered.size(), 2u);
    // Round-robin injection interleaves them: both finish within a
    // few cycles of each other instead of serially.
    auto d = a->deliver_tick > b->deliver_tick
                 ? a->deliver_tick - b->deliver_tick
                 : b->deliver_tick - a->deliver_tick;
    EXPECT_LE(d, 2u);
}

TEST(CycleNetwork, ConservationNoLossNoDuplication)
{
    NetFixture f;
    std::map<PacketId, int> seen;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        f.send(static_cast<NodeId>(i % 64),
               static_cast<NodeId>((i * 13 + 5) % 64),
               static_cast<Tick>(i / 4), 8 + (i % 5) * 16);
    }
    f.net.advanceTo(5000);
    EXPECT_EQ(f.delivered.size(), static_cast<std::size_t>(n));
    for (const auto &pkt : f.delivered)
        ++seen[pkt->id];
    for (const auto &[id, count] : seen)
        EXPECT_EQ(count, 1) << "packet " << id;
    EXPECT_TRUE(f.net.idle());
    EXPECT_EQ(f.net.inFlight(), 0u);
}

TEST(CycleNetwork, LatencyNeverBelowZeroLoadBound)
{
    NetFixture f;
    const int n = 300;
    for (int i = 0; i < n; ++i) {
        f.send(static_cast<NodeId>((i * 7) % 64),
               static_cast<NodeId>((i * 29 + 1) % 64),
               static_cast<Tick>(i));
    }
    f.net.advanceTo(5000);
    ASSERT_EQ(f.delivered.size(), static_cast<std::size_t>(n));
    for (const auto &pkt : f.delivered) {
        auto h = f.net.topology().minHops(pkt->src, pkt->dst);
        // Zero-load bound: h + 2 at pipeline depth 1 (see
        // ZeroLoadLatencyIsExact); deeper pipelines only add to it.
        Tick bound = static_cast<Tick>(h) + 2;
        EXPECT_GE(pkt->latency(), bound) << pkt->toString();
        EXPECT_GE(pkt->hops, static_cast<std::uint32_t>(h));
    }
}

TEST(CycleNetwork, XyHopsAreMinimal)
{
    NetFixture f;
    for (int i = 0; i < 100; ++i)
        f.send(static_cast<NodeId>(i % 64),
               static_cast<NodeId>((i * 31 + 7) % 64), 0);
    f.net.advanceTo(5000);
    for (const auto &pkt : f.delivered)
        EXPECT_EQ(pkt->hops, static_cast<std::uint32_t>(
                                 f.net.topology().minHops(pkt->src,
                                                          pkt->dst)));
}

TEST(CycleNetwork, StatsMatchDeliveries)
{
    NetFixture f;
    for (int i = 0; i < 50; ++i)
        f.send(static_cast<NodeId>(i % 8), static_cast<NodeId>(63 - i % 8),
               0, 64);
    f.net.advanceTo(3000);
    EXPECT_DOUBLE_EQ(f.net.packetsInjected.value(), 50.0);
    EXPECT_DOUBLE_EQ(f.net.packetsDelivered.value(), 50.0);
    EXPECT_EQ(f.net.totalLatency.count(), 50u);
    EXPECT_DOUBLE_EQ(f.net.flitsDelivered.value(), 50.0 * 4);
}

TEST(CycleNetwork, IdleFastForwardSkipsQuietPeriods)
{
    NetFixture f;
    f.send(0, 1, 100000);
    f.net.advanceTo(100000);
    // Almost no cycles actually simulated before the injection.
    EXPECT_LT(f.net.cyclesRun.value(), 10.0);
    f.net.advanceTo(100100);
    EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(CycleNetwork, AdvanceToIsIncremental)
{
    NetFixture big, split;
    for (int i = 0; i < 100; ++i) {
        big.send(static_cast<NodeId>(i % 64),
                 static_cast<NodeId>((i * 17 + 3) % 64),
                 static_cast<Tick>(i));
        split.send(static_cast<NodeId>(i % 64),
                   static_cast<NodeId>((i * 17 + 3) % 64),
                   static_cast<Tick>(i));
    }
    big.net.advanceTo(2000);
    for (Tick t = 10; t <= 2000; t += 10)
        split.net.advanceTo(t);
    ASSERT_EQ(big.delivered.size(), split.delivered.size());
    for (std::size_t i = 0; i < big.delivered.size(); ++i) {
        EXPECT_EQ(big.delivered[i]->id, split.delivered[i]->id);
        EXPECT_EQ(big.delivered[i]->deliver_tick,
                  split.delivered[i]->deliver_tick);
    }
}

TEST(CycleNetwork, TorusDatelinesDeliverWrapTraffic)
{
    NocParams p;
    p.topology = "torus";
    p.vc_classes = 2;
    NetFixture f(p);
    // All-to-all-ish wrap-heavy pattern.
    for (int i = 0; i < 64; ++i)
        f.send(static_cast<NodeId>(i), static_cast<NodeId>((i + 36) % 64),
               0, 64);
    f.net.advanceTo(5000);
    EXPECT_EQ(f.delivered.size(), 64u);
    EXPECT_TRUE(f.net.idle());
}

TEST(CycleNetwork, InvalidNodeIsFatal)
{
    NetFixture f;
    auto pkt = makePacket(99, 0, 200, MsgClass::Request, 8, 0);
    EXPECT_SIM_ERROR(f.net.inject(pkt), "outside");
}

TEST(CycleNetwork, HeavyCongestionDrains)
{
    // Hotspot: everyone sends to node 0; backpressure must not
    // deadlock and all packets must eventually arrive.
    NocParams p;
    p.vcs_per_vnet = 1;
    p.buffer_depth = 2;
    NetFixture f(p);
    for (int round = 0; round < 4; ++round)
        for (int i = 1; i < 64; ++i)
            f.send(static_cast<NodeId>(i), 0,
                   static_cast<Tick>(round * 2), 64);
    f.net.advanceTo(20000);
    EXPECT_EQ(f.delivered.size(), 4u * 63u);
    EXPECT_TRUE(f.net.idle());
}

} // namespace
