/**
 * @file
 * Object-vs-SoA compute-kernel differential: `network.kernel = soa`
 * must be bit-identical to the object reference on both detailed
 * backends — same deliveries, same rendered stats tree, and the same
 * checkpoint *bytes*, which is what makes checkpoints interchangeable
 * across kernels. Also covers the SIMD lane (scalar vs dispatched
 * AVX2 must agree) and the typed rejection of bad kernel/simd config.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/expect_error.hh"
#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "sim/cpuid.hh"
#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "sim/simulation.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

struct Delivery
{
    PacketId id;
    Tick deliver_tick;
    Tick latency;
    std::uint32_t hops;

    bool
    operator==(const Delivery &o) const
    {
        return id == o.id && deliver_tick == o.deliver_tick &&
               latency == o.latency && hops == o.hops;
    }
};

void
snapshotStats(const stats::Group &g,
              std::vector<std::tuple<std::string, std::string, double>>
                  &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.emplace_back(g.path() + "." + s->name(), sub, v);
    for (const stats::Group *c : g.children())
        snapshotStats(*c, out);
}

struct RunResult
{
    std::vector<Delivery> deliveries;
    std::vector<std::tuple<std::string, std::string, double>> stats;
    std::string archive; ///< checkpoint bytes taken mid-run
};

NocParams
testParams(const std::string &kernel, const std::string &simd = "auto")
{
    NocParams p;
    p.columns = 6;
    p.rows = 6;
    p.kernel = kernel;
    p.simd = simd;
    return p;
}

template <typename Net>
void
injectTraffic(Net &net)
{
    Rng rng(0x50a, 7);
    std::size_t nodes = net.numNodes();
    for (int i = 0; i < 400; ++i) {
        net.inject(makePacket(
            static_cast<PacketId>(i + 1),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<MsgClass>(rng.range(3)),
            rng.bernoulli(0.5) ? 8 : 64, static_cast<Tick>(i / 3)));
    }
}

/** Run to completion, snapshotting a mid-run checkpoint at tick 200. */
template <typename Net>
RunResult
runKernel(const std::string &kernel, const std::string &simd = "auto")
{
    Simulation sim;
    Net net(sim, "net", testParams(kernel, simd));
    RunResult r;
    net.setDeliveryHandler([&r](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
    });
    injectTraffic(net);
    net.advanceTo(200);
    {
        ArchiveWriter aw;
        net.save(aw);
        saveStats(aw, net);
        r.archive = aw.finish();
    }
    net.advanceTo(20000);
    EXPECT_TRUE(net.idle());
    snapshotStats(net, r.stats);
    return r;
}

void
expectSameRun(const RunResult &ref, const RunResult &got,
              const std::string &label)
{
    ASSERT_EQ(got.deliveries.size(), ref.deliveries.size()) << label;
    for (std::size_t k = 0; k < ref.deliveries.size(); ++k)
        ASSERT_TRUE(got.deliveries[k] == ref.deliveries[k])
            << label << " delivery #" << k << " packet "
            << ref.deliveries[k].id;
    ASSERT_EQ(got.stats.size(), ref.stats.size()) << label;
    for (std::size_t k = 0; k < ref.stats.size(); ++k)
        ASSERT_EQ(got.stats[k], ref.stats[k])
            << label << " stat " << std::get<0>(ref.stats[k]) << "."
            << std::get<1>(ref.stats[k]);
    // The strongest claim: both kernels serialise to the same bytes,
    // so one CRC covers both and checkpoints hop across kernels.
    EXPECT_EQ(got.archive, ref.archive) << label << " archive bytes";
}

TEST(KernelEquivalence, CycleNetworkSoaMatchesObject)
{
    RunResult object = runKernel<CycleNetwork>("object");
    ASSERT_EQ(object.deliveries.size(), 400u);
    RunResult soa = runKernel<CycleNetwork>("soa");
    expectSameRun(object, soa, "cycle soa");
}

TEST(KernelEquivalence, DeflectionNetworkSoaMatchesObject)
{
    RunResult object = runKernel<DeflectionNetwork>("object");
    ASSERT_EQ(object.deliveries.size(), 400u);
    RunResult soa = runKernel<DeflectionNetwork>("soa");
    expectSameRun(object, soa, "deflection soa");
}

TEST(KernelEquivalence, SimdLaneMatchesForcedScalar)
{
    // kernel.simd=scalar versus the dispatched default ("auto", which
    // picks AVX2 on a capable host/build): the occupancy scan is the
    // only SIMD-touched code, and skipping an all-idle node is a
    // provable no-op, so the runs must agree bit for bit.
    RunResult scalar = runKernel<CycleNetwork>("soa", "scalar");
    RunResult dispatched = runKernel<CycleNetwork>("soa", "auto");
    expectSameRun(scalar, dispatched, "cycle simd lane");

    RunResult dscalar = runKernel<DeflectionNetwork>("soa", "scalar");
    RunResult ddispatched = runKernel<DeflectionNetwork>("soa", "auto");
    expectSameRun(dscalar, ddispatched, "deflection simd lane");
}

TEST(KernelEquivalence, FabricDescribesItsDispatch)
{
    Simulation sim;
    CycleNetwork obj(sim, "obj", testParams("object"));
    EXPECT_EQ(std::string(obj.fabric().kindName()), "object");

    CycleNetwork soa(sim, "soa", testParams("soa", "scalar"));
    EXPECT_EQ(std::string(soa.fabric().kindName()), "soa");
    EXPECT_NE(soa.fabric().description().find("scalar"),
              std::string::npos);
}

TEST(KernelEquivalence, UnknownKernelRejected)
{
    NocParams p = testParams("object");
    p.kernel = "vector";
    EXPECT_SIM_ERROR(p.validate(), "unknown network.kernel");
}

TEST(KernelEquivalence, UnknownSimdPolicyRejected)
{
    NocParams p = testParams("soa");
    p.simd = "sse9";
    EXPECT_SIM_ERROR(p.validate(), "unknown kernel.simd");
}

TEST(KernelEquivalence, SoaWithUnsatisfiableAvx2Rejected)
{
    if (!cpuid::simdCompiledIn())
        GTEST_SKIP() << "AVX2 kernel not compiled in (RASIM_SIMD=off)";
    // Constructing a soa network with an explicit kernel.simd=avx2 on
    // a host without AVX2 must raise SimError(Config) at build time,
    // not fall back silently.
    cpuid::setHostOverrideForTest(false);
    {
        Simulation sim;
        EXPECT_SIM_ERROR(
            CycleNetwork(sim, "net", testParams("soa", "avx2")),
            "avx2");
    }
    cpuid::clearHostOverrideForTest();
}

} // namespace
