/**
 * @file
 * Tests for the bufferless deflection-routed network.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <map>
#include <vector>

#include "noc/deflection_network.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

struct DefFixture
{
    explicit DefFixture(NocParams p = NocParams())
        : net(sim, "dnoc", p)
    {
        net.setDeliveryHandler(
            [this](const PacketPtr &pkt) { delivered.push_back(pkt); });
    }

    PacketPtr
    send(NodeId src, NodeId dst, Tick when, std::uint32_t bytes = 8)
    {
        auto pkt = makePacket(next_id++, src, dst, MsgClass::Request,
                              bytes, when);
        net.inject(pkt);
        return pkt;
    }

    Simulation sim;
    DeflectionNetwork net;
    std::vector<PacketPtr> delivered;
    PacketId next_id = 1;
};

TEST(DeflectionNetwork, DeliversSinglePacket)
{
    DefFixture f;
    auto pkt = f.send(0, 63, 0);
    f.net.advanceTo(500);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_GE(pkt->hops, 14u); // at least minimal distance
    EXPECT_TRUE(f.net.idle());
}

TEST(DeflectionNetwork, SelfTrafficBypassesFabric)
{
    DefFixture f;
    auto pkt = f.send(5, 5, 10);
    f.net.advanceTo(100);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(pkt->latency(), 2u);
    EXPECT_EQ(pkt->hops, 0u);
}

TEST(DeflectionNetwork, UncontendedLatencyNearDistance)
{
    DefFixture f;
    auto pkt = f.send(0, 7, 0); // 7 hops across the top row
    f.net.advanceTo(500);
    ASSERT_EQ(f.delivered.size(), 1u);
    // One cycle per hop plus injection/ejection overhead; nothing to
    // deflect against.
    EXPECT_EQ(pkt->hops, 7u);
    EXPECT_LE(pkt->latency(), 12u);
    EXPECT_DOUBLE_EQ(f.net.flitsDeflected.value(), 0.0);
}

TEST(DeflectionNetwork, ConservationUnderRandomLoad)
{
    DefFixture f;
    Rng rng(0xd3f, 1);
    const int n = 800;
    for (int i = 0; i < n; ++i) {
        f.send(static_cast<NodeId>(rng.range(64)),
               static_cast<NodeId>(rng.range(64)),
               static_cast<Tick>(i / 4), rng.bernoulli(0.3) ? 64 : 8);
    }
    f.net.advanceTo(100000);
    ASSERT_EQ(f.delivered.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(f.net.idle());
    std::map<PacketId, int> seen;
    for (const auto &pkt : f.delivered)
        ++seen[pkt->id];
    for (const auto &[id, c] : seen)
        ASSERT_EQ(c, 1) << "packet " << id;
}

TEST(DeflectionNetwork, HotspotDrainsWithoutLivelock)
{
    DefFixture f;
    for (int round = 0; round < 6; ++round)
        for (int i = 1; i < 64; ++i)
            f.send(static_cast<NodeId>(i), 0,
                   static_cast<Tick>(round), 8);
    f.net.advanceTo(200000);
    EXPECT_EQ(f.delivered.size(), 6u * 63u);
    EXPECT_TRUE(f.net.idle());
    // Under a hotspot the fabric must actually deflect.
    EXPECT_GT(f.net.flitsDeflected.value(), 0.0);
}

TEST(DeflectionNetwork, DeflectionsIncreaseWithLoad)
{
    auto deflections = [](double spacing) {
        DefFixture f;
        Rng rng(7, 7);
        for (int i = 0; i < 400; ++i)
            f.send(static_cast<NodeId>(rng.range(64)),
                   static_cast<NodeId>(rng.range(64)),
                   static_cast<Tick>(i * spacing));
        f.net.advanceTo(200000);
        return f.net.flitsDeflected.value();
    };
    EXPECT_GT(deflections(0.25), deflections(8.0));
}

TEST(DeflectionNetwork, TorusWrapTrafficWorks)
{
    NocParams p;
    p.topology = "torus";
    p.vc_classes = 2;
    DefFixture f(p);
    for (int i = 0; i < 64; ++i)
        f.send(static_cast<NodeId>(i),
               static_cast<NodeId>((i + 36) % 64), 0, 8);
    f.net.advanceTo(50000);
    EXPECT_EQ(f.delivered.size(), 64u);
    // Wrap links must be used: max hops below mesh-only distance.
    for (const auto &pkt : f.delivered)
        EXPECT_LE(pkt->hops, 30u);
}

TEST(DeflectionNetwork, DeterministicAcrossRuns)
{
    auto run = [] {
        DefFixture f;
        Rng rng(0xabc, 2);
        for (int i = 0; i < 300; ++i)
            f.send(static_cast<NodeId>(rng.range(64)),
                   static_cast<NodeId>(rng.range(64)),
                   static_cast<Tick>(i / 2));
        f.net.advanceTo(50000);
        std::vector<Tick> ticks;
        for (const auto &pkt : f.delivered)
            ticks.push_back(pkt->deliver_tick);
        return ticks;
    };
    EXPECT_EQ(run(), run());
}

TEST(DeflectionNetwork, IdleFastForward)
{
    DefFixture f;
    f.send(0, 1, 50000);
    f.net.advanceTo(50000);
    f.net.advanceTo(50200);
    EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(DeflectionNetwork, InvalidNodeIsFatal)
{
    DefFixture f;
    auto pkt = makePacket(1, 0, 999, MsgClass::Request, 8, 0);
    EXPECT_SIM_ERROR(f.net.inject(pkt), "outside");
}

} // namespace
