/**
 * @file
 * Tests for link pipelines: latency stamping, ordering, credits.
 */

#include <gtest/gtest.h>

#include "noc/link.hh"

namespace
{

using namespace rasim::noc;

Flit
flitWithSeq(int seq)
{
    Flit f;
    f.seq = static_cast<std::uint16_t>(seq);
    return f;
}

TEST(Link, UnitLatencyVisibleSameCommit)
{
    Link l(1);
    l.sendFlit(5, flitWithSeq(1));
    EXPECT_FALSE(l.flitReady(4));
    EXPECT_TRUE(l.flitReady(5));
    EXPECT_EQ(l.popFlit().seq, 1);
    EXPECT_TRUE(l.empty());
}

TEST(Link, MultiCycleLatencyDelays)
{
    Link l(3);
    l.sendFlit(10, flitWithSeq(1));
    EXPECT_FALSE(l.flitReady(10));
    EXPECT_FALSE(l.flitReady(11));
    EXPECT_TRUE(l.flitReady(12));
}

TEST(Link, PreservesOrder)
{
    Link l(1);
    l.sendFlit(1, flitWithSeq(1));
    l.sendFlit(2, flitWithSeq(2));
    l.sendFlit(3, flitWithSeq(3));
    EXPECT_EQ(l.popFlit().seq, 1);
    EXPECT_EQ(l.popFlit().seq, 2);
    EXPECT_EQ(l.popFlit().seq, 3);
}

TEST(Link, CreditsIndependentOfFlits)
{
    Link l(2);
    l.sendCredit(4, 7);
    EXPECT_FALSE(l.flitReady(10));
    EXPECT_FALSE(l.creditReady(4));
    EXPECT_TRUE(l.creditReady(5));
    EXPECT_EQ(l.popCredit(), 7);
    EXPECT_TRUE(l.empty());
}

TEST(Link, FlitsInFlightCounts)
{
    Link l(1);
    EXPECT_EQ(l.flitsInFlight(), 0u);
    l.sendFlit(0, flitWithSeq(0));
    l.sendFlit(0, flitWithSeq(1));
    EXPECT_EQ(l.flitsInFlight(), 2u);
    l.popFlit();
    EXPECT_EQ(l.flitsInFlight(), 1u);
}

} // namespace
