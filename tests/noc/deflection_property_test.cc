/**
 * @file
 * Parameterised property sweep for the deflection network: across
 * grid shapes, topologies and offered loads, random traffic must be
 * delivered exactly once with sane latency accounting, and reruns
 * must be bit-identical.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "noc/deflection_network.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

// topology, columns, rows, packets-per-cycle spacing divisor
using DefParam = std::tuple<std::string, int, int, int>;

std::string
defName(const testing::TestParamInfo<DefParam> &info)
{
    const auto &[topo, cols, rows, div] = info.param;
    return topo + "_" + std::to_string(cols) + "x" +
           std::to_string(rows) + "_d" + std::to_string(div);
}

class DeflectionProperty : public testing::TestWithParam<DefParam>
{
};

TEST_P(DeflectionProperty, ExactlyOnceDeliveryWithSaneTiming)
{
    const auto &[topo, cols, rows, div] = GetParam();
    NocParams p;
    p.topology = topo;
    p.columns = cols;
    p.rows = rows;
    p.vc_classes = topo == "torus" ? 2 : 1;

    Simulation sim;
    DeflectionNetwork net(sim, "dnoc", p);
    std::map<PacketId, int> seen;
    net.setDeliveryHandler(
        [&seen](const PacketPtr &pkt) { ++seen[pkt->id]; });

    Rng rng(0x5eed, 42);
    const int n_nodes = cols * rows;
    const int n_pkts = 300;
    std::vector<PacketPtr> sent;
    for (int i = 0; i < n_pkts; ++i) {
        auto pkt = makePacket(
            static_cast<PacketId>(i + 1),
            static_cast<NodeId>(rng.range(n_nodes)),
            static_cast<NodeId>(rng.range(n_nodes)), MsgClass::Request,
            rng.bernoulli(0.3) ? 64 : 8, static_cast<Tick>(i / div));
        sent.push_back(pkt);
        net.inject(pkt);
    }
    net.advanceTo(300000);

    ASSERT_TRUE(net.idle()) << "flits stuck in the fabric";
    ASSERT_EQ(seen.size(), sent.size());
    for (const auto &[id, count] : seen)
        ASSERT_EQ(count, 1) << "packet " << id;
    for (const auto &pkt : sent) {
        EXPECT_GE(pkt->deliver_tick, pkt->inject_tick);
        int h = net.topology().minHops(pkt->src, pkt->dst);
        EXPECT_GE(pkt->hops, static_cast<std::uint32_t>(h))
            << pkt->toString();
        // Zero-load bound: a flit injected at cycle T arbitrates the
        // same cycle, traverses one hop per cycle and is visible one
        // cycle after ejecting: h + 1 cycles minimum.
        EXPECT_GE(pkt->latency(), static_cast<Tick>(h) + 1);
    }
}

TEST_P(DeflectionProperty, RerunIsBitIdentical)
{
    auto run = [this] {
        const auto &[topo, cols, rows, div] = GetParam();
        NocParams p;
        p.topology = topo;
        p.columns = cols;
        p.rows = rows;
        p.vc_classes = topo == "torus" ? 2 : 1;
        Simulation sim;
        DeflectionNetwork net(sim, "dnoc", p);
        std::vector<Tick> ticks;
        net.setDeliveryHandler([&ticks](const PacketPtr &pkt) {
            ticks.push_back(pkt->deliver_tick);
        });
        Rng rng(0x777, 3);
        for (int i = 0; i < 150; ++i) {
            net.inject(makePacket(
                static_cast<PacketId>(i + 1),
                static_cast<NodeId>(rng.range(cols * rows)),
                static_cast<NodeId>(rng.range(cols * rows)),
                MsgClass::Response, 32, static_cast<Tick>(i / div)));
        }
        net.advanceTo(300000);
        return ticks;
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeflectionProperty,
    testing::Values(DefParam{"mesh", 4, 4, 1}, DefParam{"mesh", 4, 4, 8},
                    DefParam{"mesh", 8, 8, 2}, DefParam{"mesh", 2, 8, 2},
                    DefParam{"torus", 4, 4, 1},
                    DefParam{"torus", 6, 6, 4}),
    defName);

} // namespace
