/**
 * @file
 * Checkpoint/resume differential harness at the network level: running
 * N cycles straight must be *bit-identical* to running to a mid-point,
 * archiving the network, restoring into a freshly constructed one and
 * finishing the run — same per-packet delivery order, ticks and hop
 * counts, and the same rendered statistics — for both detailed
 * backends, on the serial and the pooled engine.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "sim/parallel_engine.hh"
#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "sim/simulation.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

constexpr Tick run_end = 20000;
constexpr int num_packets = 600;

struct Delivery
{
    PacketId id;
    Tick deliver_tick;
    Tick latency;
    std::uint32_t hops;

    bool
    operator==(const Delivery &o) const
    {
        return id == o.id && deliver_tick == o.deliver_tick &&
               latency == o.latency && hops == o.hops;
    }
};

void
snapshotStats(const stats::Group &g,
              std::vector<std::tuple<std::string, std::string, double>>
                  &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.emplace_back(g.path() + "." + s->name(), sub, v);
    for (const stats::Group *c : g.children())
        snapshotStats(*c, out);
}

struct RunResult
{
    std::vector<Delivery> deliveries; ///< in delivery order
    std::vector<std::tuple<std::string, std::string, double>> stats;
};

NocParams
testParams(const std::string &kernel = "object")
{
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    p.kernel = kernel;
    return p;
}

/** Seeded random traffic: mixed sizes, classes, all node pairs. */
template <typename Net>
void
injectTraffic(Net &net)
{
    Rng rng(0x6e7, 3);
    std::size_t nodes = net.numNodes();
    for (int i = 0; i < num_packets; ++i) {
        net.inject(makePacket(
            static_cast<PacketId>(i + 1),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<MsgClass>(rng.range(3)),
            rng.bernoulli(0.5) ? 8 : 64, static_cast<Tick>(i / 3)));
    }
}

template <typename Net>
RunResult
runStraight(StepEngine *engine)
{
    Simulation sim;
    Net net(sim, "net", testParams());
    if (engine)
        net.setEngine(engine);
    RunResult r;
    net.setDeliveryHandler([&r](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
    });
    injectTraffic(net);
    net.advanceTo(run_end);
    EXPECT_TRUE(net.idle());
    snapshotStats(net, r.stats);
    return r;
}

/** Run to `mid`, archive, restore into a fresh network and finish.
 *  The save-side and restore-side compute kernels are independent:
 *  both backends emit and accept the same archive bytes, so a
 *  checkpoint can hop between them in either direction. */
template <typename Net>
RunResult
runSplit(StepEngine *engine, Tick mid,
         const std::string &save_kernel = "object",
         const std::string &restore_kernel = "object")
{
    RunResult r;
    auto record = [&r](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
    };

    std::string image;
    {
        Simulation sim;
        Net net(sim, "net", testParams(save_kernel));
        if (engine)
            net.setEngine(engine);
        net.setDeliveryHandler(record);
        injectTraffic(net);
        net.advanceTo(mid);
        // The checkpoint must capture a non-trivial moment: packets in
        // flight and injections still pending.
        EXPECT_FALSE(net.idle());
        ArchiveWriter aw;
        net.save(aw);
        saveStats(aw, net);
        image = aw.finish();
    } // the original network is gone — restore starts from scratch

    Simulation sim;
    Net net(sim, "net", testParams(restore_kernel));
    if (engine)
        net.setEngine(engine);
    net.setDeliveryHandler(record);
    ArchiveReader ar(std::move(image));
    EXPECT_TRUE(ar.ok()) << ar.error();
    net.restore(ar);
    restoreStats(ar, net);
    net.advanceTo(run_end);
    EXPECT_TRUE(net.idle());
    snapshotStats(net, r.stats);
    return r;
}

void
expectIdentical(const RunResult &ref, const RunResult &got,
                const std::string &label)
{
    ASSERT_EQ(got.deliveries.size(), ref.deliveries.size()) << label;
    for (std::size_t k = 0; k < ref.deliveries.size(); ++k)
        ASSERT_TRUE(got.deliveries[k] == ref.deliveries[k])
            << label << " delivery #" << k << " packet "
            << ref.deliveries[k].id;
    ASSERT_EQ(got.stats.size(), ref.stats.size()) << label;
    for (std::size_t k = 0; k < ref.stats.size(); ++k)
        ASSERT_EQ(got.stats[k], ref.stats[k])
            << label << " stat " << std::get<0>(ref.stats[k]) << "."
            << std::get<1>(ref.stats[k]);
}

template <typename Net>
void
expectResumeEquivalence()
{
    RunResult ref = runStraight<Net>(nullptr);
    ASSERT_EQ(ref.deliveries.size(),
              static_cast<std::size_t>(num_packets));

    // Checkpoint mid-injection (pending traffic and in-flight flits)
    // and late (drained injection queues, still in flight) — the late
    // point is derived from the reference so it lands before the
    // fabric empties.
    Tick last = ref.deliveries.back().deliver_tick;
    ASSERT_GT(last, 210u);
    for (Tick mid : {Tick{150}, (Tick{200} + last) / 2}) {
        RunResult serial = runSplit<Net>(nullptr, mid);
        expectIdentical(ref, serial,
                        "serial split at " + std::to_string(mid));

        ParallelEngine pool(2);
        RunResult parallel = runSplit<Net>(&pool, mid);
        expectIdentical(ref, parallel,
                        "parallel split at " + std::to_string(mid));

        // The SoA kernel emits and accepts the same archive bytes, so
        // the full matrix — soa→soa, and a checkpoint hopping between
        // kernels in either direction — must land on the same run.
        RunResult soa = runSplit<Net>(nullptr, mid, "soa", "soa");
        expectIdentical(ref, soa,
                        "soa split at " + std::to_string(mid));
        RunResult obj_to_soa =
            runSplit<Net>(nullptr, mid, "object", "soa");
        expectIdentical(ref, obj_to_soa,
                        "object->soa split at " + std::to_string(mid));
        RunResult soa_to_obj =
            runSplit<Net>(nullptr, mid, "soa", "object");
        expectIdentical(ref, soa_to_obj,
                        "soa->object split at " + std::to_string(mid));
    }
}

TEST(ResumeEquivalence, CycleNetworkBitIdenticalAfterRestore)
{
    expectResumeEquivalence<CycleNetwork>();
}

TEST(ResumeEquivalence, DeflectionNetworkBitIdenticalAfterRestore)
{
    expectResumeEquivalence<DeflectionNetwork>();
}

TEST(ResumeEquivalence, RestoreIndependentOfPacketPoolState)
{
    // Checkpoints store packets as payloads keyed by id, never pool
    // slot indices. Restoring into a process whose packet pool has a
    // completely different occupancy (holes, reordered free list) must
    // still reproduce the straight run bit-for-bit.
    RunResult ref = runStraight<CycleNetwork>(nullptr);

    // Churn the process-wide pool: allocate a block of packets and
    // free every other one, so the restore below lands in scrambled
    // slots a cold-started process would never use.
    std::vector<PacketPtr> churn;
    for (int i = 0; i < 300; ++i) {
        churn.push_back(makePacket(
            static_cast<PacketId>(1000000 + i), 0, 1, MsgClass::Request,
            8, 0));
    }
    for (std::size_t i = 0; i < churn.size(); i += 2)
        churn[i].reset();

    RunResult split = runSplit<CycleNetwork>(nullptr, 150);
    expectIdentical(ref, split, "restore into churned pool");
}

TEST(ResumeEquivalence, ArchiveBytesAreReproducible)
{
    // Two identical runs must produce byte-identical archives — the
    // property that lets a CRC stand in for a deep comparison.
    auto image = [](Tick mid) {
        Simulation sim;
        CycleNetwork net(sim, "net", testParams());
        injectTraffic(net);
        net.advanceTo(mid);
        ArchiveWriter aw;
        net.save(aw);
        saveStats(aw, net);
        return aw.finish();
    };
    EXPECT_EQ(image(300), image(300));
}

} // namespace
