/**
 * @file
 * Parameterised property sweeps over network configurations: for every
 * (topology, routing, vcs, buffers, pipeline) combination, random
 * traffic must be delivered exactly once, with latency at least the
 * zero-load bound and minimal hops for deterministic routing.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "noc/cycle_network.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

// topology, routing, vcs_per_vnet, buffer_depth, pipeline_stages
using ParamTuple = std::tuple<std::string, std::string, int, int, int>;

std::string
paramName(const testing::TestParamInfo<ParamTuple> &info)
{
    const auto &[topo, routing, vcs, depth, stages] = info.param;
    return topo + "_" + routing + "_v" + std::to_string(vcs) + "_b" +
           std::to_string(depth) + "_p" + std::to_string(stages);
}

class NetworkProperty : public testing::TestWithParam<ParamTuple>
{
  protected:
    NocParams
    makeParams() const
    {
        const auto &[topo, routing, vcs, depth, stages] = GetParam();
        NocParams p;
        p.columns = 4;
        p.rows = 4;
        p.topology = topo;
        p.routing = routing;
        p.vcs_per_vnet = vcs;
        p.buffer_depth = depth;
        p.pipeline_stages = stages;
        p.vc_classes = (topo == "torus") ? 2 : 1;
        return p;
    }
};

TEST_P(NetworkProperty, RandomTrafficDeliveredExactlyOnce)
{
    NocParams p = makeParams();
    Simulation sim;
    CycleNetwork net(sim, "noc", p);
    std::vector<PacketPtr> delivered;
    net.setDeliveryHandler(
        [&](const PacketPtr &pkt) { delivered.push_back(pkt); });

    Rng rng(0xfeed, 0xbeef);
    const int n_nodes = p.numNodes();
    const int n_pkts = 400;
    std::vector<PacketPtr> sent;
    for (int i = 0; i < n_pkts; ++i) {
        auto src = static_cast<NodeId>(rng.range(n_nodes));
        auto dst = static_cast<NodeId>(rng.range(n_nodes));
        auto cls = static_cast<MsgClass>(rng.range(3));
        std::uint32_t bytes = rng.bernoulli(0.5) ? 8 : 64;
        auto pkt = makePacket(static_cast<PacketId>(i + 1), src, dst, cls,
                              bytes, static_cast<Tick>(i / 2));
        sent.push_back(pkt);
        net.inject(pkt);
    }

    net.advanceTo(50000);

    ASSERT_EQ(delivered.size(), sent.size()) << "lost packets";
    EXPECT_TRUE(net.idle());

    std::map<PacketId, int> count;
    for (const auto &pkt : delivered)
        ++count[pkt->id];
    for (const auto &[id, c] : count)
        ASSERT_EQ(c, 1) << "packet " << id << " duplicated";

    const Topology &topo = net.topology();
    bool deterministic = p.routing != "westfirst";
    for (const auto &pkt : delivered) {
        int h = topo.minHops(pkt->src, pkt->dst);
        EXPECT_GE(pkt->latency(), static_cast<Tick>(h + 2));
        EXPECT_GE(pkt->deliver_tick, pkt->inject_tick);
        EXPECT_GE(pkt->enter_tick, pkt->inject_tick);
        if (deterministic) {
            EXPECT_EQ(pkt->hops, static_cast<std::uint32_t>(h))
                << pkt->toString();
        } else {
            EXPECT_GE(pkt->hops, static_cast<std::uint32_t>(h));
        }
    }
}

TEST_P(NetworkProperty, RerunIsBitIdentical)
{
    auto run = [this] {
        NocParams p = makeParams();
        Simulation sim;
        CycleNetwork net(sim, "noc", p);
        std::vector<std::pair<PacketId, Tick>> order;
        net.setDeliveryHandler([&](const PacketPtr &pkt) {
            order.emplace_back(pkt->id, pkt->deliver_tick);
        });
        Rng rng(0xc0ffee, 1);
        for (int i = 0; i < 200; ++i) {
            net.inject(makePacket(
                static_cast<PacketId>(i + 1),
                static_cast<NodeId>(rng.range(16)),
                static_cast<NodeId>(rng.range(16)), MsgClass::Request,
                32, static_cast<Tick>(i)));
        }
        net.advanceTo(20000);
        return order;
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkProperty,
    testing::Values(
        ParamTuple{"mesh", "xy", 1, 2, 1},
        ParamTuple{"mesh", "xy", 2, 4, 2},
        ParamTuple{"mesh", "xy", 4, 8, 3},
        ParamTuple{"mesh", "yx", 2, 4, 2},
        ParamTuple{"mesh", "westfirst", 2, 4, 2},
        ParamTuple{"mesh", "westfirst", 4, 2, 1},
        ParamTuple{"torus", "xy", 1, 2, 2},
        ParamTuple{"torus", "xy", 2, 4, 1},
        ParamTuple{"torus", "yx", 2, 2, 2}),
    paramName);

} // namespace
