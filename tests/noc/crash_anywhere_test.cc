/**
 * @file
 * The crash-anywhere differential harness — the headline proof of the
 * self-healing layer (DESIGN.md section 13). Real rasim-nocd worker
 * processes run under the Supervisor (the library behind
 * rasim-supervisor), and the tests SIGKILL them at the nastiest
 * client-side moments: at seeded random operation indices, inside a
 * CkptSave exchange, in the middle of a journal replay, and in the
 * window between a standby promotion and its first Step (the double
 * failure). The supervisor respawns every corpse on its old endpoint,
 * the client's recovery lineage replays it back to the pre-crash
 * state, and the run must end *bit-identical* to the fault-free
 * in-process run — deliveries, server stats tree and tuned table.
 * On top of that: a diverged replica is caught by its attestation
 * digest and quarantined instead of computed on; the heartbeat prober
 * detects a dead primary between quanta; and the new health counters
 * (standby_prime_failures, reprimes, heartbeat_misses,
 * attestation_mismatches, worker_restarts) account for all of it.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/socket.hh"
#include "ipc/supervisor.hh"
#include "noc/cycle_network.hh"
#include "noc/remote/remote_network.hh"
#include "sim/rng.hh"
#include "sim/sim_error.hh"
#include "sim/simulation.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

struct Delivery
{
    PacketId id;
    Tick deliver_tick;
    Tick latency;
    std::uint32_t hops;

    bool operator==(const Delivery &o) const = default;
};

void
snapshotStats(const stats::Group &g,
              std::vector<std::tuple<std::string, std::string, double>>
                  &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.emplace_back(g.path() + "." + s->name(), sub, v);
    for (const stats::Group *c : g.children())
        snapshotStats(*c, out);
}

constexpr Tick kQuantum = 1000;
constexpr Tick kLastLoaded = 20000; ///< last quantum fed new traffic
constexpr Tick kDrainUntil = 30000; ///< fixed drain schedule for both

/** Unlike the chaos harness (whose one-shot injection drains inside
 *  the first quantum), crash windows need the fabric busy across the
 *  whole run: every quantum gets its own seeded batch, so every
 *  quantum is a real Step exchange a kill can land on. */
template <typename Net>
void
runLoop(Net &net, const std::function<void(Tick)> &between = {})
{
    Rng rng(0x6e7c, 5);
    const std::size_t nodes = net.numNodes();
    PacketId id = 1;
    for (Tick t = kQuantum; t <= kLastLoaded; t += kQuantum) {
        for (int i = 0; i < 30; ++i) {
            net.inject(makePacket(
                id++, static_cast<NodeId>(rng.range(nodes)),
                static_cast<NodeId>(rng.range(nodes)),
                static_cast<MsgClass>(rng.range(3)),
                rng.bernoulli(0.5) ? 8 : 64,
                t - kQuantum + static_cast<Tick>(rng.range(kQuantum))));
        }
        net.advanceTo(t);
        if (between)
            between(t);
    }
    // The same fixed drain schedule on both sides, so the stats trees
    // see an identical advance sequence.
    for (Tick t = kLastLoaded + kQuantum; t <= kDrainUntil;
         t += kQuantum) {
        net.advanceTo(t);
        if (between)
            between(t);
    }
    EXPECT_TRUE(net.idle());
}

struct RunResult
{
    std::vector<Delivery> deliveries;
    std::vector<std::tuple<std::string, std::string, double>> stats;
    std::unique_ptr<abstractnet::LatencyTable> table;

    /// @name Self-healing telemetry (remote runs only)
    /// @{
    double reconnects = 0.0;
    double failovers = 0.0;
    double reprimes = 0.0;
    double prime_failures = 0.0;
    double heartbeat_misses = 0.0;
    double attest_mismatches = 0.0;
    /// @}
};

abstractnet::LatencyTable
shadowTable(const NocParams &p)
{
    return abstractnet::LatencyTable(
        p, p.columns + p.rows + 2, 0.05,
        abstractnet::LatencyTable::Granularity::Distance, p.numNodes());
}

/** Ground truth: the network hosted in this process, no transport. */
RunResult
runDirect(const NocParams &p)
{
    Simulation sim;
    CycleNetwork net(sim, "net", p);
    RunResult r;
    r.table =
        std::make_unique<abstractnet::LatencyTable>(shadowTable(p));
    net.setDeliveryHandler([&](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
        r.table->observe(static_cast<int>(pkt->cls),
                         static_cast<int>(pkt->hops),
                         p.flitsPerPacket(pkt->size_bytes),
                         pkt->latency(), pkt->src, pkt->dst);
    });
    runLoop(net);
    snapshotStats(net, r.stats);
    return r;
}

void
expectSameResults(const RunResult &crashed, const RunResult &direct,
                  const char *what)
{
    ASSERT_EQ(crashed.deliveries.size(), direct.deliveries.size())
        << what;
    for (std::size_t k = 0; k < direct.deliveries.size(); ++k)
        ASSERT_TRUE(crashed.deliveries[k] == direct.deliveries[k])
            << what << " delivery #" << k << " packet "
            << direct.deliveries[k].id;
    ASSERT_EQ(crashed.stats, direct.stats) << what;
    EXPECT_TRUE(crashed.table->identicalTo(*direct.table)) << what;
}

/** Retry budget sized for a supervisor respawn window: no wall-clock
 *  deadline, enough backed-off attempts to outlast the restart
 *  backoff, breaker off so the differential never sheds its lineage. */
ipc::RetryOptions
crashRetry()
{
    ipc::RetryOptions r;
    r.max_attempts = 60;
    r.backoff_base_ms = 5.0;
    r.backoff_multiplier = 2.0;
    r.backoff_max_ms = 50.0;
    r.jitter = 0.5;
    r.deadline_ms = 0.0;
    r.breaker_failures = 0;
    return r;
}

class CrashAnywhere : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = "/tmp/rasim-crash-" + std::to_string(::getpid());
    }

    void
    TearDown() override
    {
        stopSupervisor();
        ::unlink(registry().c_str());
    }

    std::string
    addr(int i) const
    {
        return "unix:" + base_ + "-" + std::to_string(i) + ".sock";
    }

    std::string registry() const { return base_ + ".registry"; }

    void
    startSupervisor(double backoff_base_ms = 10.0)
    {
        ipc::SupervisorOptions o;
        o.worker_cmd = {RASIM_NOCD_PATH};
        o.endpoints = {addr(0), addr(1)};
        o.registry_path = registry();
        o.restart_backoff_base_ms = backoff_base_ms;
        o.restart_backoff_max_ms = backoff_base_ms * 8;
        o.poll_ms = 5.0;
        sup_ = std::make_unique<ipc::Supervisor>(std::move(o));
        sup_->startFleet();
        sup_thread_ = std::thread([this] { sup_->run(); });
        for (std::size_t i = 0; i < sup_->workers(); ++i)
            waitConnectable(addr(static_cast<int>(i)));
    }

    void
    stopSupervisor()
    {
        if (!sup_)
            return;
        sup_->stop();
        if (sup_thread_.joinable())
            sup_thread_.join();
        sup_.reset();
    }

    /** Block until a worker answers connects on @p a (startup, or a
     *  respawn the test needs to have happened). */
    void
    waitConnectable(const std::string &a)
    {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(20);
        for (;;) {
            try {
                ipc::Fd fd = ipc::connectTo(a, 200.0);
                if (fd.valid())
                    return;
            } catch (const SimError &) {
            }
            ASSERT_LT(std::chrono::steady_clock::now(), deadline)
                << "worker on " << a << " never became connectable";
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }

    void
    killWorker(std::size_t i)
    {
        pid_t pid = sup_->workerPid(i);
        if (pid > 0)
            ::kill(pid, SIGKILL);
    }

    /** SIGKILL the worker behind the client's live session. */
    void
    killActive(const remote::RemoteNetwork &net)
    {
        killWorker(net.activeEndpoint() == addr(0) ? 0 : 1);
    }

    remote::RemoteOptions
    remoteOpts() const
    {
        remote::RemoteOptions ro;
        ro.socket = addr(0);
        ro.endpoints = {addr(0), addr(1)};
        ro.registry = registry();
        ro.retry = crashRetry();
        ro.ckpt_quanta = 2; // short journals, frequent standby priming
        return ro;
    }

    /** A full supervised remote run. @p arm installs the test hooks
     *  once the session is up (the constructor's own exchanges stay
     *  kill-free, so every test starts from a healthy fleet). Each
     *  quantum sleeps ~2 ms of wall clock, giving the supervisor's
     *  restart backoff room to land inside the run — pure timing, so
     *  the differential is untouched. */
    RunResult
    runSupervised(const NocParams &p, remote::RemoteOptions ro,
                  const std::function<void(remote::RemoteNetwork &)>
                      &arm = {})
    {
        Simulation sim;
        remote::RemoteNetwork net(sim, "rnet", p, ro);
        if (arm)
            arm(net);
        RunResult r;
        net.setDeliveryHandler([&](const PacketPtr &pkt) {
            r.deliveries.push_back({pkt->id, pkt->deliver_tick,
                                    pkt->latency(), pkt->hops});
        });
        runLoop(net, [](Tick) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        });
        for (const ipc::StatRow &row : net.fetchRemoteStats())
            r.stats.emplace_back(row.path, row.sub, row.value);
        r.table = std::make_unique<abstractnet::LatencyTable>(
            net.fetchTunedTable());
        r.reconnects = net.reconnects.value();
        r.failovers = net.failovers.value();
        r.reprimes = net.reprimes.value();
        r.prime_failures = net.standbyPrimeFailures.value();
        r.heartbeat_misses = net.heartbeatMisses.value();
        r.attest_mismatches = net.attestationMismatches.value();
        return r;
    }

    std::string base_;
    std::unique_ptr<ipc::Supervisor> sup_;
    std::thread sup_thread_;
};

TEST_F(CrashAnywhere, SeededRandomKillsEndBitIdentical)
{
    startSupervisor();
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    RunResult direct = runDirect(p);

    // A seeded schedule of kill points over the run's operation
    // stream; the first one takes BOTH workers down at once, so at
    // least one recovery must cold-open against a fleet that is still
    // respawning.
    std::set<std::uint64_t> kill_ops;
    Rng rng(0xc4a57, 9);
    while (kill_ops.size() < 3)
        kill_ops.insert(3 + rng.range(14));
    const std::uint64_t both_at = *kill_ops.begin();

    std::uint64_t kills = 0;
    RunResult run = runSupervised(
        p, remoteOpts(), [&](remote::RemoteNetwork &net) {
            net.test_hooks.on_op = [&](std::uint64_t op) {
                if (!kill_ops.count(op))
                    return;
                ++kills;
                if (op == both_at) {
                    killWorker(0);
                    killWorker(1);
                } else {
                    killActive(net);
                }
            };
        });

    EXPECT_EQ(kills, kill_ops.size()) << "a kill point never fired";
    expectSameResults(run, direct, "seeded random kills");
    EXPECT_GE(run.reconnects, static_cast<double>(kill_ops.size()));
    EXPECT_GE(sup_->restarts(), kill_ops.size() + 1); // one op killed 2

    // The supervisor republished what happened: the registry the
    // client re-resolves on every cold open records the restarts.
    std::ifstream reg(registry());
    std::string header;
    std::getline(reg, header);
    EXPECT_EQ(header, "rasim-registry v1");
}

TEST_F(CrashAnywhere, KillDuringCheckpointSaveKeepsOldLineage)
{
    startSupervisor();
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    RunResult direct = runDirect(p);

    // The worker dies *inside* the CkptSave exchange: the base refresh
    // fails, the old (longer-journal) lineage must survive and carry
    // the recovery.
    bool killed = false;
    RunResult run = runSupervised(
        p, remoteOpts(), [&](remote::RemoteNetwork &net) {
            net.test_hooks.on_ckpt_save = [&] {
                if (killed)
                    return;
                killed = true;
                killActive(net);
            };
        });

    EXPECT_TRUE(killed) << "no checkpoint refresh ever ran";
    expectSameResults(run, direct, "kill during CkptSave");
    EXPECT_GE(run.reconnects, 1.0);
}

TEST_F(CrashAnywhere, KillDuringJournalReplayRecoversOnAnotherReplica)
{
    startSupervisor();
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    RunResult direct = runDirect(p);

    // First kill forces a recovery; the second lands mid-replay, while
    // the fresh session is being fast-forwarded through the journal.
    // A longer base cadence keeps several quanta journaled, so replay
    // record #1 exists to be killed in.
    remote::RemoteOptions ro = remoteOpts();
    ro.ckpt_quanta = 4;
    int phase = 0;
    RunResult run = runSupervised(
        p, ro, [&](remote::RemoteNetwork &net) {
            net.test_hooks.on_op = [&](std::uint64_t op) {
                if (phase == 0 && op == 7) {
                    phase = 1;
                    killActive(net);
                }
            };
            net.test_hooks.on_replay = [&](std::size_t i) {
                if (phase == 1 && i >= 1) {
                    phase = 2;
                    killActive(net);
                }
            };
        });

    EXPECT_EQ(phase, 2) << "the replay window was never hit";
    expectSameResults(run, direct, "kill during replay");
    EXPECT_GE(run.reconnects, 2.0);
}

TEST_F(CrashAnywhere, DoubleFailureAcrossThePromotionWindow)
{
    startSupervisor();
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    RunResult direct = runDirect(p);

    // Kill the primary, let the standby promote, then kill the new
    // primary before its first Step — the window where the old code
    // had no standby left and no way to grow one back.
    int kills = 0;
    RunResult run = runSupervised(
        p, remoteOpts(), [&](remote::RemoteNetwork &net) {
            net.test_hooks.on_op = [&](std::uint64_t op) {
                if (op == 6 && kills == 0) {
                    kills = 1;
                    killActive(net);
                }
            };
            net.test_hooks.on_promote = [&] {
                if (kills == 1) {
                    kills = 2;
                    killActive(net);
                }
            };
        });

    EXPECT_EQ(kills, 2) << "the promotion window was never hit";
    expectSameResults(run, direct, "double failure");
    EXPECT_GE(run.failovers, 1.0);
    // The client converged back to one-primary-one-standby: the
    // re-prime machinery rebuilt a standby on a respawned worker.
    EXPECT_GE(run.reprimes + run.prime_failures, 1.0);
    EXPECT_GE(sup_->restarts(), 2u);
}

TEST_F(CrashAnywhere, DivergedReplicaIsQuarantinedByAttestation)
{
    startSupervisor();
    NocParams p;
    p.columns = 4;
    p.rows = 4;

    remote::RemoteOptions ro = remoteOpts();
    ro.attest_quanta = 1; // every quantum journals its digest
    ro.ckpt_quanta = 0;   // whole-run journal, no standby priming
    ro.retry = crashRetry();
    ro.retry.max_attempts = 6; // few, fast mismatch rounds

    Simulation sim;
    remote::RemoteNetwork net(sim, "rnet", p, ro);
    // Every digest the client records from here on is flipped: the
    // journal now describes a run no honest replica can attest to.
    net.test_hooks.corrupt_attest = true;

    Rng rng(0x6e7c, 5);
    PacketId id = 1;
    for (Tick t = kQuantum; t <= 5 * kQuantum; t += kQuantum) {
        for (int i = 0; i < 10; ++i) {
            net.inject(makePacket(
                id++, static_cast<NodeId>(rng.range(net.numNodes())),
                static_cast<NodeId>(rng.range(net.numNodes())),
                static_cast<MsgClass>(rng.range(3)), 8,
                t - kQuantum + static_cast<Tick>(rng.range(kQuantum))));
        }
        net.advanceTo(t);
    }

    // Force a recovery: every replica replays the journal, none can
    // reproduce the corrupted digests, every one is quarantined — the
    // failure surfaces as a typed error instead of a silently diverged
    // simulation.
    killActive(net);
    net.inject(makePacket(id++, 0, 15, MsgClass::Request, 8, 5500));
    try {
        net.advanceTo(6 * kQuantum);
        FAIL() << "a diverged replica was silently accepted";
    } catch (const SimError &err) {
        EXPECT_EQ(err.kind(), ErrorKind::Transport) << err.what();
    }
    EXPECT_GE(net.attestationMismatches.value(), 2.0)
        << "quarantine should have rejected more than one replica";
}

TEST_F(CrashAnywhere, HeartbeatDetectsADeadPrimaryBetweenQuanta)
{
    // Wide restart backoff: the corpse stays dead long enough for the
    // prober to notice it before the supervisor resurrects it.
    startSupervisor(/*backoff_base_ms=*/400.0);
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    RunResult direct = runDirect(p);

    remote::RemoteOptions ro = remoteOpts();
    ro.heartbeat_ms = 20.0;

    Simulation sim;
    remote::RemoteNetwork net(sim, "rnet", p, ro);
    RunResult run;
    net.setDeliveryHandler([&](const PacketPtr &pkt) {
        run.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
    });
    runLoop(net, [&](Tick t) {
        if (t != 5 * kQuantum)
            return;
        // Kill the primary while the client is idle between quanta:
        // nothing but the prober is looking at the socket. By the
        // next advanceTo() the suspicion must already be recorded and
        // the failover taken pre-emptively.
        killActive(net);
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
    });

    for (const ipc::StatRow &row : net.fetchRemoteStats())
        run.stats.emplace_back(row.path, row.sub, row.value);
    run.table = std::make_unique<abstractnet::LatencyTable>(
        net.fetchTunedTable());
    expectSameResults(run, direct, "heartbeat failover");
    EXPECT_GE(net.heartbeatMisses.value(), 1.0)
        << "the prober never noticed the corpse";
    EXPECT_GE(net.failovers.value(), 1.0);
}

TEST_F(CrashAnywhere, RegistryMirrorsFleetRestartsIntoHealthStats)
{
    startSupervisor();
    // A hand-written registry (a separate file, not the supervisor's)
    // with fleet history: the client must mirror the total restart
    // count into system.net.health.worker_restarts on its cold open.
    const std::string reg = base_ + ".handreg";
    {
        std::ofstream out(reg);
        out << "rasim-registry v1\n"
            << "worker 0 " << addr(0) << " up pid 101 restarts 5\n"
            << "worker 1 " << addr(1) << " up pid 102 restarts 2\n";
    }

    NocParams p;
    p.columns = 4;
    p.rows = 4;
    remote::RemoteOptions ro = remoteOpts();
    ro.registry = reg;

    Simulation sim;
    remote::RemoteNetwork net(sim, "rnet", p, ro);
    EXPECT_EQ(net.workerRestarts.value(), 7.0);
    ::unlink(reg.c_str());
}

} // namespace
