/**
 * @file
 * Tests for routing algorithms: productivity, dimension order, turn
 * model restrictions, and torus shortest-way routing.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <vector>

#include "noc/routing.hh"
#include "noc/topology.hh"

namespace
{

using namespace rasim::noc;

std::vector<int>
routeOf(const RoutingAlgorithm &alg, const Topology &topo, int node,
        rasim::NodeId dst)
{
    std::vector<int> out;
    alg.route(topo, node, dst, out);
    return out;
}

TEST(XYRouting, AtDestinationGoesLocal)
{
    Mesh2D m(4, 4);
    XYRouting xy;
    EXPECT_EQ(routeOf(xy, m, 5, 5), (std::vector<int>{port_local}));
}

TEST(XYRouting, XBeforeY)
{
    Mesh2D m(4, 4);
    XYRouting xy;
    // From (0,0) to (2,2): X first -> east.
    EXPECT_EQ(routeOf(xy, m, m.nodeAt(0, 0), m.nodeAt(2, 2)),
              (std::vector<int>{port_east}));
    // Same column: go south.
    EXPECT_EQ(routeOf(xy, m, m.nodeAt(2, 0), m.nodeAt(2, 2)),
              (std::vector<int>{port_south}));
    // West and north cases.
    EXPECT_EQ(routeOf(xy, m, m.nodeAt(3, 3), m.nodeAt(1, 3)),
              (std::vector<int>{port_west}));
    EXPECT_EQ(routeOf(xy, m, m.nodeAt(1, 3), m.nodeAt(1, 0)),
              (std::vector<int>{port_north}));
}

TEST(YXRouting, YBeforeX)
{
    Mesh2D m(4, 4);
    YXRouting yx;
    EXPECT_EQ(routeOf(yx, m, m.nodeAt(0, 0), m.nodeAt(2, 2)),
              (std::vector<int>{port_south}));
    EXPECT_EQ(routeOf(yx, m, m.nodeAt(0, 2), m.nodeAt(2, 2)),
              (std::vector<int>{port_east}));
}

TEST(XYRouting, FollowedHopsReachDestinationExactly)
{
    Mesh2D m(8, 8);
    XYRouting xy;
    for (int s = 0; s < 64; s += 7) {
        for (int d = 0; d < 64; d += 5) {
            int at = s;
            int hops = 0;
            while (true) {
                auto r = routeOf(xy, m, at, d);
                ASSERT_EQ(r.size(), 1u);
                if (r[0] == port_local)
                    break;
                at = m.neighbor(at, r[0]);
                ASSERT_GE(at, 0);
                ++hops;
                ASSERT_LE(hops, 14);
            }
            EXPECT_EQ(at, d);
            EXPECT_EQ(hops, m.minHops(s, d));
        }
    }
}

TEST(WestFirst, WestIsExclusive)
{
    Mesh2D m(8, 8);
    WestFirstRouting wf;
    // Destination to the west and south: only west is allowed first.
    auto r = routeOf(wf, m, m.nodeAt(5, 2), m.nodeAt(2, 6));
    EXPECT_EQ(r, (std::vector<int>{port_west}));
}

TEST(WestFirst, AdaptiveWhenNoWestComponent)
{
    Mesh2D m(8, 8);
    WestFirstRouting wf;
    auto r = routeOf(wf, m, m.nodeAt(1, 1), m.nodeAt(4, 5));
    EXPECT_EQ(r, (std::vector<int>{port_east, port_south}));
    r = routeOf(wf, m, m.nodeAt(1, 5), m.nodeAt(4, 2));
    EXPECT_EQ(r, (std::vector<int>{port_east, port_north}));
}

TEST(WestFirst, AllCandidatesProductive)
{
    Mesh2D m(8, 8);
    WestFirstRouting wf;
    for (int s = 0; s < 64; s += 3) {
        for (int d = 0; d < 64; d += 3) {
            if (s == d)
                continue;
            for (int p : routeOf(wf, m, s, d)) {
                int next = m.neighbor(s, p);
                ASSERT_GE(next, 0);
                EXPECT_EQ(m.minHops(next, d), m.minHops(s, d) - 1)
                    << "unproductive hop " << portName(p) << " from "
                    << s << " to " << d;
            }
        }
    }
}

TEST(XYRouting, TorusTakesShorterWay)
{
    Torus2D t(8, 8);
    XYRouting xy;
    // (0,0) -> (7,0): west wrap is 1 hop.
    EXPECT_EQ(routeOf(xy, t, t.nodeAt(0, 0), t.nodeAt(7, 0)),
              (std::vector<int>{port_west}));
    // (0,0) -> (3,0): direct east, 3 hops.
    EXPECT_EQ(routeOf(xy, t, t.nodeAt(0, 0), t.nodeAt(3, 0)),
              (std::vector<int>{port_east}));
    // (1,0) -> (1,7): north wrap.
    EXPECT_EQ(routeOf(xy, t, t.nodeAt(1, 0), t.nodeAt(1, 7)),
              (std::vector<int>{port_north}));
}

TEST(XYRouting, TorusHopsMatchMinHops)
{
    Torus2D t(6, 6);
    XYRouting xy;
    for (int s = 0; s < 36; ++s) {
        for (int d = 0; d < 36; ++d) {
            int at = s;
            int hops = 0;
            while (at != d) {
                auto r = routeOf(xy, t, at, d);
                ASSERT_EQ(r.size(), 1u);
                ASSERT_NE(r[0], port_local);
                at = t.neighbor(at, r[0]);
                ++hops;
                ASSERT_LE(hops, 6);
            }
            EXPECT_EQ(hops, t.minHops(s, d));
        }
    }
}

TEST(RoutingFactory, MakesAllKinds)
{
    EXPECT_EQ(makeRouting("xy")->name(), "xy");
    EXPECT_EQ(makeRouting("yx")->name(), "yx");
    EXPECT_EQ(makeRouting("westfirst")->name(), "westfirst");
}

TEST(RoutingFactory, UnknownIsFatal)
{
    EXPECT_SIM_ERROR(makeRouting("random"), "unknown routing");
}

} // namespace
