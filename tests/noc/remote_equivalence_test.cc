/**
 * @file
 * Remote-vs-in-process differential harness: hosting the detailed
 * network in a rasim-nocd server behind the quantum-RPC transport must
 * be *bit-identical* to running the same network in-process — same
 * deliveries in the same order, same rendered statistics, and the same
 * shadow-tuned LatencyTable — for both network models, with the server
 * running its engine serially or pooled. This is the headline proof
 * that out-of-process co-simulation does not perturb results.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/nocd_server.hh"
#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "noc/remote/remote_network.hh"
#include "sim/rng.hh"
#include "sim/sim_error.hh"
#include "sim/simulation.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

struct Delivery
{
    PacketId id;
    Tick deliver_tick;
    Tick latency;
    std::uint32_t hops;

    bool operator==(const Delivery &o) const = default;
};

void
snapshotStats(const stats::Group &g,
              std::vector<std::tuple<std::string, std::string, double>>
                  &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.emplace_back(g.path() + "." + s->name(), sub, v);
    for (const stats::Group *c : g.children())
        snapshotStats(*c, out);
}

/** The same seeded traffic as the engine-equivalence harness. */
template <typename Net>
void
injectTraffic(Net &net, std::size_t nodes)
{
    Rng rng(0x6e7, 3);
    for (int i = 0; i < 600; ++i) {
        net.inject(makePacket(
            static_cast<PacketId>(i + 1),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<MsgClass>(rng.range(3)),
            rng.bernoulli(0.5) ? 8 : 64, static_cast<Tick>(i / 3)));
    }
}

/** Advance in quanta, the way a bridge drives its backend. */
template <typename Net>
void
stepQuanta(Net &net)
{
    for (Tick t = 1000; t <= 20000; t += 1000)
        net.advanceTo(t);
}

abstractnet::LatencyTable
shadowTable(const NocParams &p)
{
    return abstractnet::LatencyTable(
        p, p.columns + p.rows + 2, 0.05,
        abstractnet::LatencyTable::Granularity::Distance, p.numNodes());
}

struct RunResult
{
    std::vector<Delivery> deliveries;
    std::vector<std::tuple<std::string, std::string, double>> stats;
    std::unique_ptr<abstractnet::LatencyTable> table;
};

/** Ground truth: the network hosted in this process. */
template <typename Net>
RunResult
runDirect(const NocParams &p)
{
    Simulation sim;
    Net net(sim, "net", p);
    RunResult r;
    r.table =
        std::make_unique<abstractnet::LatencyTable>(shadowTable(p));
    net.setDeliveryHandler([&](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
        r.table->observe(static_cast<int>(pkt->cls),
                         static_cast<int>(pkt->hops),
                         p.flitsPerPacket(pkt->size_bytes),
                         pkt->latency(), pkt->src, pkt->dst);
    });
    injectTraffic(net, net.numNodes());
    stepQuanta(net);
    EXPECT_TRUE(net.idle());
    snapshotStats(net, r.stats);
    return r;
}

/** The same run, with the network living in a rasim-nocd server.
 *  @p pipeline / @p speculate select the transport flavour: the v2
 *  coalesced Step exchange with or without server speculation, or the
 *  v1 blocking InjectBatch+Advance pair — all three must be
 *  bit-identical to each other and to the direct run. */
RunResult
runRemote(const NocParams &p, const std::string &addr,
          const std::string &model, int server_workers,
          bool pipeline = true, bool speculate = true)
{
    Simulation sim;
    remote::RemoteOptions ro;
    ro.socket = addr;
    ro.model = model;
    ro.engine_workers = server_workers;
    ro.pipeline = pipeline;
    ro.speculate = speculate;
    remote::RemoteNetwork net(sim, "rnet", p, ro);
    RunResult r;
    net.setDeliveryHandler([&](const PacketPtr &pkt) {
        r.deliveries.push_back(
            {pkt->id, pkt->deliver_tick, pkt->latency(), pkt->hops});
    });
    injectTraffic(net, net.numNodes());
    stepQuanta(net);
    EXPECT_TRUE(net.idle());
    r.stats = [&] {
        std::vector<std::tuple<std::string, std::string, double>> rows;
        for (const ipc::StatRow &row : net.fetchRemoteStats())
            rows.emplace_back(row.path, row.sub, row.value);
        return rows;
    }();
    r.table = std::make_unique<abstractnet::LatencyTable>(
        net.fetchTunedTable());
    return r;
}

class RemoteEquivalence : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        addr_ = "unix:/tmp/rasim-remote-eq-" +
                std::to_string(::getpid()) + ".sock";
        startServer();
    }

    void
    TearDown() override
    {
        stopServer();
    }

    void
    startServer()
    {
        ipc::NocServerOptions opts;
        opts.address = addr_;
        server_ = std::make_unique<ipc::NocServer>(opts);
        thread_ = std::thread([this] { server_->run(); });
    }

    void
    stopServer()
    {
        if (!server_)
            return;
        server_->stop();
        thread_.join();
        server_.reset();
    }

    template <typename Net>
    void
    expectRemoteMatchesDirect(const std::string &model)
    {
        NocParams p;
        p.columns = 8;
        p.rows = 8;
        RunResult direct = runDirect<Net>(p);
        ASSERT_EQ(direct.deliveries.size(), 600u);

        for (int workers : {0, 4}) {
            RunResult remote =
                runRemote(p, addr_, model, workers);

            ASSERT_EQ(remote.deliveries.size(),
                      direct.deliveries.size())
                << "server workers=" << workers;
            for (std::size_t k = 0; k < direct.deliveries.size(); ++k)
                ASSERT_TRUE(remote.deliveries[k] ==
                            direct.deliveries[k])
                    << "server workers=" << workers << " delivery #"
                    << k << " packet " << direct.deliveries[k].id;

            // The hosted network's statistics tree equals the
            // in-process one row for row, bit for bit.
            ASSERT_EQ(remote.stats.size(), direct.stats.size());
            for (std::size_t k = 0; k < direct.stats.size(); ++k)
                ASSERT_EQ(remote.stats[k], direct.stats[k])
                    << "server workers=" << workers << " stat "
                    << std::get<0>(direct.stats[k]) << "."
                    << std::get<1>(direct.stats[k]);

            // The server's shadow-tuned table evolved exactly like a
            // locally tuned one: the reciprocal feedback is preserved
            // across the process boundary.
            EXPECT_TRUE(remote.table->identicalTo(*direct.table))
                << "server workers=" << workers;
        }
    }

    std::string addr_;
    std::unique_ptr<ipc::NocServer> server_;
    std::thread thread_;
};

TEST_F(RemoteEquivalence, CycleNetworkBitIdentical)
{
    expectRemoteMatchesDirect<CycleNetwork>("cycle");
}

TEST_F(RemoteEquivalence, DeflectionNetworkBitIdentical)
{
    expectRemoteMatchesDirect<DeflectionNetwork>("deflection");
}

TEST_F(RemoteEquivalence, SoaKernelHostedRemotelyBitIdentical)
{
    // The Hello handshake carries network.kernel / kernel.simd (proto
    // v4), so the server builds the SoA backend the client configured.
    // The hosted SoA fabric must be bit-identical to the *object*
    // kernel running in-process: deliveries, the stats tree and the
    // shadow-tuned table — closing the kernel × process-boundary
    // equivalence square.
    NocParams obj;
    obj.columns = 8;
    obj.rows = 8;
    NocParams soa = obj;
    soa.kernel = "soa";

    auto check = [&](const std::string &model, RunResult &direct) {
        for (int workers : {0, 4}) {
            RunResult remote = runRemote(soa, addr_, model, workers);
            ASSERT_EQ(remote.deliveries.size(),
                      direct.deliveries.size())
                << model << " soa workers=" << workers;
            for (std::size_t k = 0; k < direct.deliveries.size(); ++k)
                ASSERT_TRUE(remote.deliveries[k] ==
                            direct.deliveries[k])
                    << model << " soa workers=" << workers
                    << " delivery #" << k;
            ASSERT_EQ(remote.stats, direct.stats)
                << model << " soa workers=" << workers;
            EXPECT_TRUE(remote.table->identicalTo(*direct.table))
                << model << " soa workers=" << workers;
        }
    };

    RunResult cyc = runDirect<CycleNetwork>(obj);
    ASSERT_EQ(cyc.deliveries.size(), 600u);
    check("cycle", cyc);

    RunResult def = runDirect<DeflectionNetwork>(obj);
    ASSERT_EQ(def.deliveries.size(), 600u);
    check("deflection", def);
}

TEST_F(RemoteEquivalence, PipelineFlavoursAllBitIdentical)
{
    // The three transport flavours — blocking v1, coalesced Step
    // without speculation, coalesced Step with server speculation —
    // must produce the same deliveries, stats and tuned table as the
    // direct run and therefore as each other. This is the proof that
    // coalescing, idle elision and speculative execution are pure
    // transport optimisations.
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    RunResult direct = runDirect<CycleNetwork>(p);

    struct Flavour
    {
        const char *name;
        bool pipeline;
        bool speculate;
    };
    for (const Flavour f : {Flavour{"blocking", false, false},
                            Flavour{"coalesced", true, false},
                            Flavour{"speculative", true, true}}) {
        RunResult remote =
            runRemote(p, addr_, "cycle", 0, f.pipeline, f.speculate);
        ASSERT_EQ(remote.deliveries.size(), direct.deliveries.size())
            << f.name;
        for (std::size_t k = 0; k < direct.deliveries.size(); ++k)
            ASSERT_TRUE(remote.deliveries[k] == direct.deliveries[k])
                << f.name << " delivery #" << k;
        ASSERT_EQ(remote.stats, direct.stats) << f.name;
        EXPECT_TRUE(remote.table->identicalTo(*direct.table)) << f.name;
    }
}

TEST_F(RemoteEquivalence, ServerLossSurfacesAsSimErrorThenReconnects)
{
    NocParams p;
    p.columns = 4;
    p.rows = 4;
    Simulation sim;
    remote::RemoteOptions ro;
    ro.socket = addr_;
    ro.connect_timeout_ms = 2000.0;
    remote::RemoteNetwork net(sim, "rnet", p, ro);
    EXPECT_TRUE(net.connected());

    net.inject(makePacket(1, 0, 15, MsgClass::Request, 8, 10));
    net.advanceTo(1000);
    EXPECT_EQ(net.deliveredCount(), 1u);

    // Kill the server under the live session: the next quantum must
    // fail with a typed SimError — never a hang — which is exactly
    // what the bridge's health machinery quarantines on.
    stopServer();
    net.inject(makePacket(2, 1, 14, MsgClass::Request, 8, 1500));
    bool threw = false;
    try {
        net.advanceTo(2000);
    } catch (const SimError &e) {
        threw = true;
        EXPECT_TRUE(e.kind() == ErrorKind::Transport ||
                    e.kind() == ErrorKind::Timeout)
            << e.what();
    }
    EXPECT_TRUE(threw);
    EXPECT_FALSE(net.connected());

    // A restarted server is picked up transparently: the client opens
    // a fresh session fast-forwarded to the current tick.
    startServer();
    net.inject(makePacket(3, 2, 13, MsgClass::Response, 8, 2500));
    net.advanceTo(4000);
    EXPECT_TRUE(net.connected());
    EXPECT_EQ(net.curTime(), 4000u);
    EXPECT_EQ(net.deliveredCount(), 1u); // fresh server accounting
}

TEST_F(RemoteEquivalence, ServerKilledMidSpeculationTearsDownAndResumes)
{
    // Drive the server into its speculative regime — drain-shaped
    // quanta (empty inject batch, fabric busy) arm speculative
    // execution of the predicted next quantum — then kill it there.
    // Teardown must join a worker that may be mid-speculation without
    // deadlock or crash, the client must surface a typed error (not a
    // hang), and a restarted server must pick the session back up.
    NocParams p;
    p.columns = 4;
    p.rows = 4;
    Simulation sim;
    remote::RemoteOptions ro;
    ro.socket = addr_;
    ro.connect_timeout_ms = 2000.0;
    ro.pipeline = true;
    ro.speculate = true;
    remote::RemoteNetwork net(sim, "rnet", p, ro);

    // A burst big enough that the fabric stays busy across several
    // short quanta; every advance after the first is drain-shaped.
    for (int i = 0; i < 256; ++i)
        net.inject(makePacket(static_cast<PacketId>(i + 1),
                              static_cast<NodeId>(i % 16),
                              static_cast<NodeId>((i * 7 + 3) % 16),
                              MsgClass::Request, 64, 5));
    for (Tick t = 20; t <= 100; t += 20)
        net.advanceTo(t);
    ASSERT_FALSE(net.idle()); // still draining: speculation armed

    // stop() + join while the session worker may be speculating.
    stopServer();

    bool threw = false;
    try {
        net.advanceTo(120);
    } catch (const SimError &e) {
        threw = true;
        EXPECT_TRUE(e.kind() == ErrorKind::Transport ||
                    e.kind() == ErrorKind::Timeout)
            << e.what();
    }
    EXPECT_TRUE(threw);
    EXPECT_FALSE(net.connected());

    startServer();
    net.inject(makePacket(1000, 0, 15, MsgClass::Request, 8, 300));
    net.advanceTo(2000);
    EXPECT_TRUE(net.connected());
    EXPECT_EQ(net.curTime(), 2000u);
    EXPECT_TRUE(net.idle());
}

} // namespace
