/**
 * @file
 * Serial-vs-parallel differential harness: the determinism contract
 * says a pooled run must be *bit-identical* to a serial run — same
 * per-packet delivery ticks, hop counts and delivery order, and the
 * same rendered statistics down to float rounding — for both detailed
 * network backends. This is the property that makes the paper's
 * parallel co-simulation claim testable rather than aspirational.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "sim/parallel_engine.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace
{

using namespace rasim;
using namespace rasim::noc;

/** One delivered packet, every field a parallel run could disturb. */
struct Delivery
{
    PacketId id;
    Tick deliver_tick;
    Tick latency;
    std::uint32_t hops;

    bool
    operator==(const Delivery &o) const
    {
        return id == o.id && deliver_tick == o.deliver_tick &&
               latency == o.latency && hops == o.hops;
    }
};

/** Flatten a stats subtree to (path.stat, sub-name, value) rows. */
void
snapshotStats(const stats::Group &g,
              std::vector<std::tuple<std::string, std::string, double>>
                  &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.emplace_back(g.path() + "." + s->name(), sub, v);
    for (const stats::Group *c : g.children())
        snapshotStats(*c, out);
}

struct RunResult
{
    std::vector<Delivery> deliveries; ///< in delivery order
    std::vector<std::tuple<std::string, std::string, double>> stats;
};

/** Seeded random traffic: mixed sizes, classes, all node pairs. */
template <typename Net>
void
driveTraffic(Net &net, std::size_t nodes)
{
    Rng rng(0x6e7, 3);
    for (int i = 0; i < 600; ++i) {
        net.inject(makePacket(
            static_cast<PacketId>(i + 1),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<NodeId>(rng.range(nodes)),
            static_cast<MsgClass>(rng.range(3)),
            rng.bernoulli(0.5) ? 8 : 64, static_cast<Tick>(i / 3)));
    }
    net.advanceTo(20000);
}

template <typename Net>
RunResult
runNetwork(StepEngine *engine, const std::string &kernel = "object")
{
    Simulation sim;
    NocParams p;
    p.columns = 8;
    p.rows = 8;
    p.kernel = kernel;
    Net net(sim, "net", p);
    if (engine)
        net.setEngine(engine);
    RunResult r;
    net.setDeliveryHandler([&r](const PacketPtr &pkt) {
        r.deliveries.push_back({pkt->id, pkt->deliver_tick,
                                pkt->latency(), pkt->hops});
    });
    driveTraffic(net, net.numNodes());
    EXPECT_TRUE(net.idle());
    snapshotStats(net, r.stats);
    return r;
}

void
expectSameRun(const RunResult &ref, const RunResult &got,
              const std::string &label)
{
    ASSERT_EQ(got.deliveries.size(), ref.deliveries.size()) << label;
    for (std::size_t k = 0; k < ref.deliveries.size(); ++k)
        ASSERT_TRUE(got.deliveries[k] == ref.deliveries[k])
            << label << " delivery #" << k << " packet "
            << ref.deliveries[k].id;

    // Rendered statistics must match bit for bit: identical sample
    // order (fixed-order reduction) means identical float rounding,
    // not merely close means.
    ASSERT_EQ(got.stats.size(), ref.stats.size()) << label;
    for (std::size_t k = 0; k < ref.stats.size(); ++k)
        ASSERT_EQ(got.stats[k], ref.stats[k])
            << label << " stat " << std::get<0>(ref.stats[k]) << "."
            << std::get<1>(ref.stats[k]);
}

template <typename Net>
void
expectEngineEquivalence()
{
    // Object-kernel serial is the single reference; every other
    // (kernel × engine) cell must be bit-identical to it.
    RunResult serial = runNetwork<Net>(nullptr);
    ASSERT_EQ(serial.deliveries.size(), 600u);

    for (const char *kernel : {"object", "soa"}) {
        if (std::string(kernel) != "object") {
            RunResult alt = runNetwork<Net>(nullptr, kernel);
            expectSameRun(serial, alt,
                          std::string("kernel=") + kernel + " serial");
        }
        for (int workers : {1, 2, 8}) {
            ParallelEngine pool(workers);
            RunResult parallel = runNetwork<Net>(&pool, kernel);
            expectSameRun(serial, parallel,
                          std::string("kernel=") + kernel +
                              " workers=" + std::to_string(workers));
        }
    }
}

TEST(EngineEquivalence, CycleNetworkBitIdenticalAcrossEngines)
{
    expectEngineEquivalence<CycleNetwork>();
}

TEST(EngineEquivalence, DeflectionNetworkBitIdenticalAcrossEngines)
{
    expectEngineEquivalence<DeflectionNetwork>();
}

TEST(EngineEquivalence, SharedPoolAcrossBothBackends)
{
    // One pool can serve several networks in turn (the bridge reuses
    // its engine across quanta); results stay identical to serial.
    ParallelEngine pool(2);
    RunResult cyc_serial = runNetwork<CycleNetwork>(nullptr);
    RunResult cyc_pool = runNetwork<CycleNetwork>(&pool);
    RunResult def_serial = runNetwork<DeflectionNetwork>(nullptr);
    RunResult def_pool = runNetwork<DeflectionNetwork>(&pool);
    EXPECT_TRUE(cyc_serial.deliveries == cyc_pool.deliveries);
    EXPECT_TRUE(def_serial.deliveries == def_pool.deliveries);
    EXPECT_TRUE(cyc_serial.stats == cyc_pool.stats);
    EXPECT_TRUE(def_serial.stats == def_pool.stats);
}

} // namespace
