/**
 * @file
 * Tests for mesh and torus topologies: connectivity, symmetry, hop
 * distances and wrap-link detection.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include "noc/topology.hh"

namespace
{

using namespace rasim::noc;

TEST(Mesh2D, CoordsRoundTrip)
{
    Mesh2D m(4, 3);
    EXPECT_EQ(m.numNodes(), 12);
    for (int n = 0; n < 12; ++n) {
        auto [x, y] = m.coords(n);
        EXPECT_EQ(m.nodeAt(x, y), static_cast<rasim::NodeId>(n));
    }
}

TEST(Mesh2D, InteriorNeighbors)
{
    Mesh2D m(4, 4);
    int n = m.nodeAt(1, 1);
    EXPECT_EQ(m.neighbor(n, port_north), m.nodeAt(1, 0));
    EXPECT_EQ(m.neighbor(n, port_south), m.nodeAt(1, 2));
    EXPECT_EQ(m.neighbor(n, port_east), m.nodeAt(2, 1));
    EXPECT_EQ(m.neighbor(n, port_west), m.nodeAt(0, 1));
}

TEST(Mesh2D, EdgesHaveNoNeighbor)
{
    Mesh2D m(4, 4);
    EXPECT_EQ(m.neighbor(m.nodeAt(0, 0), port_north), -1);
    EXPECT_EQ(m.neighbor(m.nodeAt(0, 0), port_west), -1);
    EXPECT_EQ(m.neighbor(m.nodeAt(3, 3), port_south), -1);
    EXPECT_EQ(m.neighbor(m.nodeAt(3, 3), port_east), -1);
    EXPECT_EQ(m.neighbor(0, port_local), -1);
}

TEST(Mesh2D, LinksAreSymmetric)
{
    Mesh2D m(5, 3);
    for (int n = 0; n < m.numNodes(); ++n) {
        for (int p = 1; p < m.numPorts(); ++p) {
            int j = m.neighbor(n, p);
            if (j < 0)
                continue;
            int back = m.inputPortAt(n, p);
            EXPECT_EQ(m.neighbor(j, back), n)
                << "n=" << n << " p=" << portName(p);
        }
    }
}

TEST(Mesh2D, ManhattanDistance)
{
    Mesh2D m(8, 8);
    EXPECT_EQ(m.minHops(m.nodeAt(0, 0), m.nodeAt(0, 0)), 0);
    EXPECT_EQ(m.minHops(m.nodeAt(0, 0), m.nodeAt(7, 7)), 14);
    EXPECT_EQ(m.minHops(m.nodeAt(2, 3), m.nodeAt(5, 1)), 5);
}

TEST(Mesh2D, NoWrapLinks)
{
    Mesh2D m(4, 4);
    for (int n = 0; n < m.numNodes(); ++n)
        for (int p = 0; p < m.numPorts(); ++p)
            EXPECT_FALSE(m.isWrapLink(n, p));
}

TEST(Torus2D, AllPortsConnected)
{
    Torus2D t(4, 4);
    for (int n = 0; n < t.numNodes(); ++n)
        for (int p = 1; p < t.numPorts(); ++p)
            EXPECT_GE(t.neighbor(n, p), 0);
}

TEST(Torus2D, WrapNeighbors)
{
    Torus2D t(4, 3);
    EXPECT_EQ(t.neighbor(t.nodeAt(0, 0), port_west), t.nodeAt(3, 0));
    EXPECT_EQ(t.neighbor(t.nodeAt(3, 0), port_east), t.nodeAt(0, 0));
    EXPECT_EQ(t.neighbor(t.nodeAt(1, 0), port_north), t.nodeAt(1, 2));
    EXPECT_EQ(t.neighbor(t.nodeAt(1, 2), port_south), t.nodeAt(1, 0));
}

TEST(Torus2D, WrapLinkDetection)
{
    Torus2D t(4, 4);
    EXPECT_TRUE(t.isWrapLink(t.nodeAt(0, 1), port_west));
    EXPECT_TRUE(t.isWrapLink(t.nodeAt(3, 1), port_east));
    EXPECT_TRUE(t.isWrapLink(t.nodeAt(1, 0), port_north));
    EXPECT_TRUE(t.isWrapLink(t.nodeAt(1, 3), port_south));
    EXPECT_FALSE(t.isWrapLink(t.nodeAt(1, 1), port_east));
}

TEST(Torus2D, ShorterWayAroundCounts)
{
    Torus2D t(8, 8);
    // 0 -> 7 in x is 1 hop via the wrap link.
    EXPECT_EQ(t.minHops(t.nodeAt(0, 0), t.nodeAt(7, 0)), 1);
    EXPECT_EQ(t.minHops(t.nodeAt(0, 0), t.nodeAt(4, 4)), 8);
    EXPECT_EQ(t.minHops(t.nodeAt(1, 1), t.nodeAt(6, 7)), 3 + 2);
}

TEST(TopologyFactory, MakesBothKinds)
{
    auto m = makeTopology("mesh", 3, 3);
    auto t = makeTopology("torus", 3, 3);
    EXPECT_EQ(m->name(), "mesh3x3");
    EXPECT_EQ(t->name(), "torus3x3");
}

TEST(TopologyFactory, UnknownKindIsFatal)
{
    EXPECT_SIM_ERROR(makeTopology("hypercube", 2, 2), "unknown topology");
}

TEST(Mesh2D, BadDimensionsAreFatal)
{
    EXPECT_SIM_ERROR(Mesh2D(0, 4), "positive");
}

} // namespace
