/**
 * @file
 * Tests for packet/flit types and packetisation arithmetic.
 */

#include <gtest/gtest.h>

#include "noc/packet.hh"

namespace
{

using namespace rasim::noc;

TEST(Packet, LatencyAccessors)
{
    Packet p;
    p.inject_tick = 10;
    p.enter_tick = 14;
    p.deliver_tick = 30;
    EXPECT_EQ(p.latency(), 20u);
    EXPECT_EQ(p.networkLatency(), 16u);
    EXPECT_EQ(p.queueLatency(), 4u);
}

TEST(Packet, FactoryFillsFields)
{
    auto p = makePacket(7, 1, 2, MsgClass::Response, 64, 100, 0xabc);
    EXPECT_EQ(p->id, 7u);
    EXPECT_EQ(p->src, 1u);
    EXPECT_EQ(p->dst, 2u);
    EXPECT_EQ(p->cls, MsgClass::Response);
    EXPECT_EQ(p->size_bytes, 64u);
    EXPECT_EQ(p->inject_tick, 100u);
    EXPECT_EQ(p->context, 0xabcu);
}

TEST(Packet, ToStringMentionsEndpoints)
{
    auto p = makePacket(3, 4, 9, MsgClass::Request, 8, 0);
    std::string s = p->toString();
    EXPECT_NE(s.find("4->9"), std::string::npos);
    EXPECT_NE(s.find("Request"), std::string::npos);
}

TEST(Flit, HeadTailPredicates)
{
    Flit f;
    f.type = Flit::Type::Head;
    EXPECT_TRUE(f.isHead());
    EXPECT_FALSE(f.isTail());
    f.type = Flit::Type::Tail;
    EXPECT_FALSE(f.isHead());
    EXPECT_TRUE(f.isTail());
    f.type = Flit::Type::HeadTail;
    EXPECT_TRUE(f.isHead());
    EXPECT_TRUE(f.isTail());
    f.type = Flit::Type::Body;
    EXPECT_FALSE(f.isHead());
    EXPECT_FALSE(f.isTail());
}

TEST(Flit, FlitsForBytesRoundsUp)
{
    EXPECT_EQ(flitsForBytes(0, 16), 1u);
    EXPECT_EQ(flitsForBytes(1, 16), 1u);
    EXPECT_EQ(flitsForBytes(16, 16), 1u);
    EXPECT_EQ(flitsForBytes(17, 16), 2u);
    EXPECT_EQ(flitsForBytes(64, 16), 4u);
    EXPECT_EQ(flitsForBytes(72, 16), 5u);
}

TEST(MsgClass, Names)
{
    EXPECT_STREQ(toString(MsgClass::Request), "Request");
    EXPECT_STREQ(toString(MsgClass::Forward), "Forward");
    EXPECT_STREQ(toString(MsgClass::Response), "Response");
}

} // namespace
