/**
 * @file
 * Tests for synthetic address streams.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <set>

#include "workload/address_stream.hh"

namespace
{

using namespace rasim;
using namespace rasim::workload;

TEST(SyntheticStream, PrivateRegionsDisjointPerCore)
{
    StreamProfile p;
    p.shared_frac = 0.0;
    SyntheticStream a(p, 0, 64, Rng(1, 1));
    SyntheticStream b(p, 1, 64, Rng(1, 2));
    std::set<Addr> seen_a, seen_b;
    for (int i = 0; i < 2000; ++i) {
        seen_a.insert(a.next().addr);
        seen_b.insert(b.next().addr);
    }
    for (Addr addr : seen_a)
        EXPECT_EQ(seen_b.count(addr), 0u);
}

TEST(SyntheticStream, SharedFractionRespected)
{
    StreamProfile p;
    p.shared_frac = 0.4;
    SyntheticStream s(p, 3, 64, Rng(2, 2));
    int shared = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        Addr addr = s.next().addr;
        if (addr >= SyntheticStream::shared_base &&
            addr < SyntheticStream::private_base)
            ++shared;
    }
    EXPECT_NEAR(static_cast<double>(shared) / n, 0.4, 0.02);
}

TEST(SyntheticStream, WriteFractionRespected)
{
    StreamProfile p;
    p.write_frac = 0.25;
    SyntheticStream s(p, 0, 64, Rng(3, 3));
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += s.next().is_write;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.25, 0.02);
}

TEST(SyntheticStream, HotspotConcentratesSharedAccesses)
{
    StreamProfile p;
    p.shared_frac = 1.0;
    p.hotspot_frac = 0.9;
    p.hotspot_blocks = 4;
    SyntheticStream s(p, 0, 64, Rng(4, 4));
    int hot = 0;
    const int n = 10000;
    Addr hot_end = SyntheticStream::shared_base + 4 * 64;
    for (int i = 0; i < n; ++i) {
        Addr addr = s.next().addr;
        if (addr < hot_end)
            ++hot;
    }
    EXPECT_GT(static_cast<double>(hot) / n, 0.85);
}

TEST(SyntheticStream, SequentialLocalityProducesStrides)
{
    StreamProfile p;
    p.shared_frac = 0.0;
    p.seq_frac = 1.0;
    p.stride_blocks = 1;
    SyntheticStream s(p, 0, 64, Rng(5, 5));
    Addr prev = s.next().addr;
    for (int i = 0; i < 100; ++i) {
        Addr cur = s.next().addr;
        if (cur > prev) { // ignore working-set wrap
            EXPECT_EQ(cur - prev, 64u);
        }
        prev = cur;
    }
}

TEST(SyntheticStream, AddressesAreBlockAligned)
{
    StreamProfile p;
    SyntheticStream s(p, 2, 64, Rng(6, 6));
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(s.next().addr % 64, 0u);
}

TEST(SyntheticStream, DeterministicForSameSeed)
{
    StreamProfile p;
    SyntheticStream a(p, 0, 64, Rng(7, 7));
    SyntheticStream b(p, 0, 64, Rng(7, 7));
    for (int i = 0; i < 500; ++i) {
        MemOp x = a.next(), y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.is_write, y.is_write);
    }
}

TEST(SyntheticStream, BadProfileIsFatal)
{
    StreamProfile p;
    p.hotspot_blocks = 1 << 20;
    EXPECT_SIM_ERROR(SyntheticStream(p, 0, 64, Rng(1, 1)), "hotspot");
}

} // namespace
