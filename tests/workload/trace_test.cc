/**
 * @file
 * Tests for packet trace capture, persistence and replay.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <sstream>

#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/trace.hh"

namespace
{

using namespace rasim;
using namespace rasim::workload;

PacketTrace
sampleTrace()
{
    PacketTrace trace;
    trace.record(noc::makePacket(1, 0, 5, noc::MsgClass::Request, 8, 10));
    trace.record(noc::makePacket(2, 3, 7, noc::MsgClass::Response, 72,
                                 15));
    trace.record(noc::makePacket(3, 1, 1, noc::MsgClass::Forward, 8, 20));
    return trace;
}

TEST(PacketTrace, RecordsFields)
{
    PacketTrace t = sampleTrace();
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.records()[0].inject_tick, 10u);
    EXPECT_EQ(t.records()[1].size_bytes, 72u);
    EXPECT_EQ(t.records()[2].cls, noc::MsgClass::Forward);
}

TEST(PacketTrace, SaveLoadRoundTrip)
{
    PacketTrace t = sampleTrace();
    std::stringstream ss;
    t.save(ss);
    PacketTrace u = PacketTrace::load(ss);
    ASSERT_EQ(u.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(u.records()[i], t.records()[i]);
}

TEST(PacketTrace, LoadRejectsGarbage)
{
    std::stringstream ss("tick,src,dst,class,bytes\n1,2\n");
    EXPECT_SIM_ERROR(PacketTrace::load(ss), "malformed");
}

TEST(TraceReplayer, ReplaysAtRecordedTimes)
{
    Simulation sim;
    noc::NocParams p;
    noc::CycleNetwork net(sim, "noc", p);
    std::vector<noc::PacketPtr> delivered;
    net.setDeliveryHandler(
        [&](const noc::PacketPtr &pkt) { delivered.push_back(pkt); });

    PacketTrace t = sampleTrace();
    TraceReplayer rep(net, t);
    rep.replayTo(12); // only the tick-10 record
    EXPECT_EQ(rep.injected(), 1u);
    EXPECT_FALSE(rep.finished());
    rep.replayTo(1000);
    EXPECT_TRUE(rep.finished());
    net.advanceTo(2000);
    ASSERT_EQ(delivered.size(), 3u);
    bool saw_first = false;
    for (const auto &pkt : delivered)
        saw_first |= (pkt->inject_tick == 10 && pkt->src == 0 &&
                      pkt->dst == 5);
    EXPECT_TRUE(saw_first);
}

TEST(TraceReplayer, EmptyTraceFinishesImmediately)
{
    Simulation sim;
    noc::CycleNetwork net(sim, "noc", noc::NocParams());
    PacketTrace empty;
    TraceReplayer rep(net, empty);
    EXPECT_TRUE(rep.finished());
}

} // namespace
