/**
 * @file
 * Tests for packet trace capture, persistence and replay.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <sstream>

#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/trace.hh"

namespace
{

using namespace rasim;
using namespace rasim::workload;

PacketTrace
sampleTrace()
{
    PacketTrace trace;
    trace.record(noc::makePacket(1, 0, 5, noc::MsgClass::Request, 8, 10));
    trace.record(noc::makePacket(2, 3, 7, noc::MsgClass::Response, 72,
                                 15));
    trace.record(noc::makePacket(3, 1, 1, noc::MsgClass::Forward, 8, 20));
    return trace;
}

TEST(PacketTrace, RecordsFields)
{
    PacketTrace t = sampleTrace();
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.records()[0].inject_tick, 10u);
    EXPECT_EQ(t.records()[1].size_bytes, 72u);
    EXPECT_EQ(t.records()[2].cls, noc::MsgClass::Forward);
}

TEST(PacketTrace, SaveLoadRoundTrip)
{
    PacketTrace t = sampleTrace();
    std::stringstream ss;
    t.save(ss);
    PacketTrace u = PacketTrace::load(ss);
    ASSERT_EQ(u.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(u.records()[i], t.records()[i]);
}

TEST(PacketTrace, LoadRejectsGarbage)
{
    std::stringstream ss("tick,src,dst,class,bytes\n1,2\n");
    EXPECT_SIM_ERROR(PacketTrace::load(ss), "malformed");
}

TEST(PacketTrace, BinaryRoundTrip)
{
    PacketTrace t = sampleTrace();
    std::stringstream ss;
    t.saveBinary(ss);
    PacketTrace u = PacketTrace::loadBinary(ss);
    ASSERT_EQ(u.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(u.records()[i], t.records()[i]);
}

TEST(PacketTrace, CsvToBinaryAndBackIsLossless)
{
    PacketTrace t = sampleTrace();
    std::stringstream csv;
    t.save(csv);
    PacketTrace from_csv = PacketTrace::load(csv);
    std::stringstream bin;
    from_csv.saveBinary(bin);
    PacketTrace from_bin = PacketTrace::loadBinary(bin);
    std::stringstream csv2;
    from_bin.save(csv2);
    csv.clear();
    csv.seekg(0);
    EXPECT_EQ(csv.str(), csv2.str());
    ASSERT_EQ(from_bin.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(from_bin.records()[i], t.records()[i]);
}

TEST(PacketTrace, BinaryLoadRejectsCorruption)
{
    PacketTrace t = sampleTrace();
    std::stringstream ss;
    t.saveBinary(ss);
    std::string image = ss.str();

    // Flip one payload byte: the CRC trailer must catch it.
    std::string corrupt = image;
    corrupt[image.size() / 2] ^= 0x40;
    std::stringstream bad(corrupt);
    EXPECT_SIM_ERROR(PacketTrace::loadBinary(bad),
                     "cannot load binary trace");

    // Truncation inside the body must also be rejected.
    std::stringstream trunc(image.substr(0, image.size() / 2));
    EXPECT_SIM_ERROR(PacketTrace::loadBinary(trunc),
                     "cannot load binary trace");

    // A CSV file fed to the binary loader is not a crash either.
    std::stringstream csv;
    t.save(csv);
    EXPECT_SIM_ERROR(PacketTrace::loadBinary(csv),
                     "cannot load binary trace");
}

TEST(TraceReplayer, ReplaysAtRecordedTimes)
{
    Simulation sim;
    noc::NocParams p;
    noc::CycleNetwork net(sim, "noc", p);
    std::vector<noc::PacketPtr> delivered;
    net.setDeliveryHandler(
        [&](const noc::PacketPtr &pkt) { delivered.push_back(pkt); });

    PacketTrace t = sampleTrace();
    TraceReplayer rep(net, t);
    rep.replayTo(12); // only the tick-10 record
    EXPECT_EQ(rep.injected(), 1u);
    EXPECT_FALSE(rep.finished());
    rep.replayTo(1000);
    EXPECT_TRUE(rep.finished());
    net.advanceTo(2000);
    ASSERT_EQ(delivered.size(), 3u);
    bool saw_first = false;
    for (const auto &pkt : delivered)
        saw_first |= (pkt->inject_tick == 10 && pkt->src == 0 &&
                      pkt->dst == 5);
    EXPECT_TRUE(saw_first);
}

TEST(TraceReplayer, EmptyTraceFinishesImmediately)
{
    Simulation sim;
    noc::CycleNetwork net(sim, "noc", noc::NocParams());
    PacketTrace empty;
    TraceReplayer rep(net, empty);
    EXPECT_TRUE(rep.finished());
}

} // namespace
