/**
 * @file
 * Tests for synthetic packet traffic patterns and the open-loop
 * generator.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <map>

#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/traffic.hh"

namespace
{

using namespace rasim;
using namespace rasim::workload;

TEST(Patterns, TransposeSwapsCoordinates)
{
    Rng rng(1, 1);
    // 4x4: node (x=1, y=2) = 9 -> (x=2, y=1) = 6.
    EXPECT_EQ(patternDest(TrafficPattern::Transpose, 9, 4, 4, rng), 6u);
    EXPECT_EQ(patternDest(TrafficPattern::Transpose, 6, 4, 4, rng), 9u);
}

TEST(Patterns, BitComplementMirrors)
{
    Rng rng(1, 1);
    EXPECT_EQ(patternDest(TrafficPattern::BitComplement, 0, 4, 4, rng),
              15u);
    EXPECT_EQ(patternDest(TrafficPattern::BitComplement, 5, 4, 4, rng),
              10u);
}

TEST(Patterns, TornadoHalfRing)
{
    Rng rng(1, 1);
    // 8 columns: x -> x+4.
    EXPECT_EQ(patternDest(TrafficPattern::Tornado, 0, 8, 8, rng), 4u);
    EXPECT_EQ(patternDest(TrafficPattern::Tornado, 6, 8, 8, rng), 2u);
}

TEST(Patterns, NeighborWrapsRow)
{
    Rng rng(1, 1);
    EXPECT_EQ(patternDest(TrafficPattern::Neighbor, 0, 4, 4, rng), 1u);
    EXPECT_EQ(patternDest(TrafficPattern::Neighbor, 3, 4, 4, rng), 0u);
}

TEST(Patterns, UniformCoversAllNodes)
{
    Rng rng(2, 2);
    std::map<NodeId, int> seen;
    for (int i = 0; i < 5000; ++i)
        ++seen[patternDest(TrafficPattern::UniformRandom, 0, 4, 4, rng)];
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Patterns, NamesRoundTrip)
{
    for (const char *name : {"uniform", "transpose", "bitcomp",
                             "hotspot", "tornado", "neighbor"}) {
        EXPECT_STREQ(toString(patternFromName(name)), name);
    }
    EXPECT_SIM_ERROR(patternFromName("nope"), "unknown traffic pattern");
}

TEST(TrafficGenerator, RateIsRespected)
{
    Simulation sim;
    noc::NocParams p;
    noc::CycleNetwork net(sim, "noc", p);
    TrafficGenerator::Options opts;
    opts.rate = 0.05;
    TrafficGenerator gen(net, 8, 8, opts, Rng(3, 3));
    gen.generateTo(2000);
    // 64 nodes * 2000 cycles * 0.05 = 6400 expected.
    EXPECT_NEAR(static_cast<double>(gen.generated()), 6400, 300);
}

TEST(TrafficGenerator, GeneratedTrafficIsDeliverable)
{
    Simulation sim;
    noc::NocParams p;
    noc::CycleNetwork net(sim, "noc", p);
    std::uint64_t delivered = 0;
    net.setDeliveryHandler([&](const noc::PacketPtr &) { ++delivered; });
    TrafficGenerator::Options opts;
    opts.rate = 0.02;
    TrafficGenerator gen(net, 8, 8, opts, Rng(4, 4));
    for (Tick t = 100; t <= 3000; t += 100) {
        gen.generateTo(t);
        net.advanceTo(t);
    }
    net.advanceTo(20000);
    EXPECT_EQ(delivered, gen.generated());
}

TEST(TrafficGenerator, BurstyModeClumps)
{
    Simulation sim;
    noc::NocParams p;
    noc::CycleNetwork net(sim, "noc", p);
    TrafficGenerator::Options opts;
    opts.rate = 0.05;
    opts.bursty = true;
    opts.mean_burst = 16;
    TrafficGenerator gen(net, 8, 8, opts, Rng(5, 5));
    gen.generateTo(4000);
    // Long-run rate stays near the duty cycle.
    EXPECT_NEAR(static_cast<double>(gen.generated()), 12800, 2500);
}

TEST(TrafficGenerator, MismatchedGridIsFatal)
{
    Simulation sim;
    noc::NocParams p;
    noc::CycleNetwork net(sim, "noc", p);
    TrafficGenerator::Options opts;
    EXPECT_SIM_ERROR(TrafficGenerator(net, 4, 4, opts, Rng(1, 1)),
                 "does not match");
}

} // namespace
