/**
 * @file
 * Tests for the named application presets.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <set>

#include "workload/app_profiles.hh"

namespace
{

using namespace rasim::workload;

TEST(AppProfiles, EightDistinctPresets)
{
    const auto &apps = appProfiles();
    EXPECT_EQ(apps.size(), 8u);
    std::set<std::string> names;
    for (const auto &app : apps)
        names.insert(app.name);
    EXPECT_EQ(names.size(), 8u);
}

TEST(AppProfiles, LookupByName)
{
    EXPECT_EQ(appProfile("fft").name, "fft");
    EXPECT_EQ(appProfile("radix").stream.hotspot_frac, 0.5);
    EXPECT_SIM_ERROR(appProfile("doom"), "unknown application");
}

TEST(AppProfiles, ParametersAreSane)
{
    for (const auto &app : appProfiles()) {
        EXPECT_GT(app.mem_ratio, 0.0) << app.name;
        EXPECT_LE(app.mem_ratio, 1.0) << app.name;
        EXPECT_GT(app.ops_per_core, 0u) << app.name;
        EXPECT_GE(app.stream.shared_frac, 0.0) << app.name;
        EXPECT_LE(app.stream.shared_frac, 1.0) << app.name;
        EXPECT_LE(app.stream.hotspot_blocks, app.stream.shared_blocks)
            << app.name;
        EXPECT_GT(app.stream.write_frac, 0.0) << app.name;
    }
}

TEST(AppProfiles, PresetsAreBehaviorallyDiverse)
{
    // The experiments rely on presets stressing the network
    // differently: at least one hotspot-heavy, one sharing-heavy and
    // one locality-heavy preset must exist.
    bool hotspotty = false, sharey = false, local = false;
    for (const auto &app : appProfiles()) {
        hotspotty |= app.stream.hotspot_frac >= 0.5;
        sharey |= app.stream.shared_frac >= 0.5;
        local |= app.stream.seq_frac >= 0.8;
    }
    EXPECT_TRUE(hotspotty);
    EXPECT_TRUE(sharey);
    EXPECT_TRUE(local);
}

} // namespace
