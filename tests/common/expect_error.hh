/**
 * @file
 * EXPECT_SIM_ERROR: assert that a statement raises SimError through
 * the throwing error mode (logging::ThrowOnError), replacing the old
 * EXPECT_DEATH pattern. In-process and orders of magnitude faster than
 * forking a death test, and it verifies the taxonomy rebasing of
 * fatal()/panic() at every converted call site.
 */

#ifndef RASIM_TESTS_COMMON_EXPECT_ERROR_HH
#define RASIM_TESTS_COMMON_EXPECT_ERROR_HH

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace rasim
{
namespace test
{

/** Run @p fn under a ThrowOnError guard and check it raises a
 *  SimError whose message contains @p substr. */
inline ::testing::AssertionResult
simErrorThrown(const std::function<void()> &fn, const std::string &substr)
{
    logging::ThrowOnError guard;
    try {
        fn();
    } catch (const SimError &e) {
        if (std::string(e.what()).find(substr) != std::string::npos)
            return ::testing::AssertionSuccess();
        return ::testing::AssertionFailure()
               << "SimError message \"" << e.what()
               << "\" does not contain \"" << substr << "\"";
    } catch (const std::exception &e) {
        return ::testing::AssertionFailure()
               << "threw a non-SimError exception: " << e.what();
    }
    return ::testing::AssertionFailure() << "no SimError was thrown";
}

} // namespace test
} // namespace rasim

/** Expect @p stmt to raise SimError with @p substr in its message. */
#define EXPECT_SIM_ERROR(stmt, substr)                                    \
    EXPECT_TRUE(::rasim::test::simErrorThrown([&] { (void)(stmt); },      \
                                              substr))

#endif // RASIM_TESTS_COMMON_EXPECT_ERROR_HH
