/**
 * @file
 * Tests for the closed-form latency pieces, including the crucial
 * cross-model property: the zero-load formula matches the cycle-level
 * network exactly when the fabric is uncontended.
 */

#include <gtest/gtest.h>

#include <vector>

#include "abstractnet/latency_model.hh"
#include "noc/cycle_network.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::abstractnet;

TEST(ZeroLoadLatency, BaseCases)
{
    noc::NocParams p;
    p.pipeline_stages = 1;
    p.link_latency = 1;
    EXPECT_EQ(zeroLoadLatency(p, 0, 1), 2u);
    EXPECT_EQ(zeroLoadLatency(p, 1, 1), 3u);
    EXPECT_EQ(zeroLoadLatency(p, 2, 1), 4u);
    EXPECT_EQ(zeroLoadLatency(p, 2, 5), 8u);
}

TEST(ZeroLoadLatency, PipelineAndLinkScaling)
{
    noc::NocParams p1, p;
    p1.pipeline_stages = 1;
    p1.link_latency = 1;
    p.pipeline_stages = 3;
    p.link_latency = 2;
    // P*(h+1) + h*(L-1) + flits
    EXPECT_EQ(zeroLoadLatency(p, 4, 1), 3u * 5 + 4 + 1);
    EXPECT_EQ(zeroLoadLatency(p, 0, 2), 3u + 0 + 2);
}

TEST(ZeroLoadLatency, MatchesCycleNetworkExactly)
{
    // One packet at a time through an otherwise empty network must hit
    // the closed-form number exactly, for several configurations.
    std::vector<noc::NocParams> configs(4);
    configs[1].pipeline_stages = 1;
    configs[2].pipeline_stages = 3;
    configs[2].link_latency = 2;
    configs[3].flit_bytes = 8;

    for (const auto &p : configs) {
        Simulation sim;
        noc::CycleNetwork net(sim, "noc", p);
        std::vector<noc::PacketPtr> done;
        net.setDeliveryHandler(
            [&](const noc::PacketPtr &pkt) { done.push_back(pkt); });
        Tick t = 0;
        PacketId id = 1;
        // Sparse in time: each packet finishes before the next starts.
        for (NodeId dst : {0u, 1u, 9u, 27u, 63u}) {
            for (std::uint32_t bytes : {8u, 64u}) {
                net.inject(noc::makePacket(id++, 0, dst,
                                           noc::MsgClass::Request, bytes,
                                           t));
                t += 500;
            }
        }
        net.advanceTo(t + 500);
        ASSERT_EQ(done.size(), 10u);
        for (const auto &pkt : done) {
            int h = net.topology().minHops(pkt->src, pkt->dst);
            EXPECT_EQ(pkt->latency(),
                      zeroLoadLatency(p, h,
                                      p.flitsPerPacket(pkt->size_bytes)))
                << pkt->toString() << " with P=" << p.pipeline_stages
                << " L=" << p.link_latency;
        }
    }
}

TEST(ContentionDelay, ZeroAtZeroLoad)
{
    EXPECT_DOUBLE_EQ(contentionDelay(0.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(contentionDelay(-1.0, 100.0), 0.0);
}

TEST(ContentionDelay, MonotonicInRho)
{
    double prev = 0.0;
    for (double rho = 0.05; rho < 1.0; rho += 0.05) {
        double w = contentionDelay(rho, 1e9);
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(ContentionDelay, CappedAtSaturation)
{
    EXPECT_DOUBLE_EQ(contentionDelay(1.0, 42.0), 42.0);
    EXPECT_DOUBLE_EQ(contentionDelay(0.9999, 10.0), 10.0);
}

TEST(ContentionDelay, MD1Shape)
{
    // W = rho / (2 (1 - rho)): at rho = 0.5, W = 0.5.
    EXPECT_NEAR(contentionDelay(0.5, 100.0), 0.5, 1e-12);
    EXPECT_NEAR(contentionDelay(0.8, 100.0), 2.0, 1e-12);
}

} // namespace
