/**
 * @file
 * Tests for the reciprocal latency table.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <sstream>

#include "abstractnet/latency_model.hh"
#include "abstractnet/latency_table.hh"

namespace
{

using namespace rasim;
using namespace rasim::abstractnet;

noc::NocParams
defaultParams()
{
    return noc::NocParams{};
}

TEST(LatencyTable, SeedsWithZeroLoad)
{
    auto p = defaultParams();
    LatencyTable t(p, 14);
    for (int h = 0; h <= 14; ++h) {
        for (int v = 0; v < noc::num_vnets; ++v) {
            EXPECT_DOUBLE_EQ(
                t.estimate(v, h, 1),
                static_cast<double>(zeroLoadLatency(p, h, 1)));
        }
    }
    EXPECT_EQ(t.observations(), 0u);
}

TEST(LatencyTable, FirstObservationReplacesSeed)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 0.1);
    t.observe(0, 3, 1, 50);
    EXPECT_DOUBLE_EQ(t.estimate(0, 3, 1), 50.0);
    EXPECT_EQ(t.observations(), 1u);
}

TEST(LatencyTable, EwmaConvergesToObservations)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 0.2);
    for (int i = 0; i < 200; ++i)
        t.observe(1, 5, 1, 33);
    EXPECT_NEAR(t.estimate(1, 5, 1), 33.0, 1e-6);
}

TEST(LatencyTable, EwmaTracksShifts)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 0.5);
    for (int i = 0; i < 50; ++i)
        t.observe(0, 2, 1, 10);
    for (int i = 0; i < 50; ++i)
        t.observe(0, 2, 1, 40);
    EXPECT_NEAR(t.estimate(0, 2, 1), 40.0, 1e-3);
}

TEST(LatencyTable, SerializationFactoredOut)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 1.0);
    // Observe a 5-flit packet with latency 20: entry stores 16.
    t.observe(0, 4, 5, 20);
    EXPECT_DOUBLE_EQ(t.estimate(0, 4, 1), 16.0);
    EXPECT_DOUBLE_EQ(t.estimate(0, 4, 3), 18.0);
    EXPECT_DOUBLE_EQ(t.estimate(0, 4, 5), 20.0);
}

TEST(LatencyTable, VnetsAreIndependent)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 1.0);
    t.observe(0, 3, 1, 100);
    EXPECT_DOUBLE_EQ(t.estimate(0, 3, 1), 100.0);
    EXPECT_DOUBLE_EQ(
        t.estimate(2, 3, 1),
        static_cast<double>(zeroLoadLatency(p, 3, 1)));
}

TEST(LatencyTable, DistancesClampToMax)
{
    auto p = defaultParams();
    LatencyTable t(p, 4, 1.0);
    t.observe(0, 99, 1, 77); // clamps to entry 4
    EXPECT_DOUBLE_EQ(t.estimate(0, 4, 1), 77.0);
    EXPECT_DOUBLE_EQ(t.estimate(0, 50, 1), 77.0);
}

TEST(LatencyTable, ResetRevertsToSeed)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 1.0);
    t.observe(0, 3, 1, 100);
    t.reset();
    EXPECT_EQ(t.observations(), 0u);
    EXPECT_DOUBLE_EQ(
        t.estimate(0, 3, 1),
        static_cast<double>(zeroLoadLatency(p, 3, 1)));
}

TEST(LatencyTable, BadAlphaIsFatal)
{
    auto p = defaultParams();
    EXPECT_SIM_ERROR(LatencyTable(p, 14, 0.0), "EWMA weight");
    EXPECT_SIM_ERROR(LatencyTable(p, 14, 1.5), "EWMA weight");
}

TEST(LatencyTable, SaveLoadRoundTrip)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 0.3);
    t.observe(0, 2, 1, 25);
    t.observe(0, 2, 1, 35);
    t.observe(2, 7, 5, 60);
    std::stringstream ss;
    t.save(ss);
    LatencyTable u(p, 14, 0.3);
    u.load(ss);
    EXPECT_EQ(u.observations(), t.observations());
    EXPECT_DOUBLE_EQ(u.estimate(0, 2, 1), t.estimate(0, 2, 1));
    EXPECT_DOUBLE_EQ(u.estimate(2, 7, 5), t.estimate(2, 7, 5));
    // Untouched entries still fall back to the zero-load seed.
    EXPECT_DOUBLE_EQ(u.estimate(1, 3, 1),
                     static_cast<double>(zeroLoadLatency(p, 3, 1)));
}

TEST(LatencyTable, LoadRejectsGarbageAndMismatch)
{
    auto p = defaultParams();
    LatencyTable t(p, 4, 0.3);
    std::stringstream bad("vnet,hops,ewma,samples\n0,2\n");
    EXPECT_SIM_ERROR(t.load(bad), "malformed");
    std::stringstream deep("0,99,10.0,5\n");
    EXPECT_SIM_ERROR(t.load(deep), "geometry");
}

TEST(LatencyTable, PairGranularityRefinesPerFlow)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 1.0, LatencyTable::Granularity::Pair, 64);
    // Flow 0->9 is congested; flow 9->0 (same distance) is not.
    t.observe(0, 2, 1, 80, 0, 9);
    t.observe(0, 2, 1, 12, 9, 0);
    EXPECT_DOUBLE_EQ(t.estimate(0, 2, 1, 0, 9), 80.0);
    EXPECT_DOUBLE_EQ(t.estimate(0, 2, 1, 9, 0), 12.0);
    // An unseen flow of the same distance falls back to the distance
    // aggregate (here: EWMA over both observations with alpha 1 ->
    // last value).
    EXPECT_DOUBLE_EQ(t.estimate(0, 2, 1, 1, 10), 12.0);
    // And without endpoints, the distance aggregate answers.
    EXPECT_DOUBLE_EQ(t.estimate(0, 2, 1), 12.0);
}

TEST(LatencyTable, DistanceGranularityIgnoresEndpoints)
{
    auto p = defaultParams();
    LatencyTable t(p, 14, 1.0);
    t.observe(0, 2, 1, 80, 0, 9);
    EXPECT_DOUBLE_EQ(t.estimate(0, 2, 1, 9, 0), 80.0);
    EXPECT_DOUBLE_EQ(t.estimate(0, 2, 1, 0, 9), 80.0);
}

TEST(LatencyTable, PairWithoutNodeCountIsFatal)
{
    auto p = defaultParams();
    EXPECT_SIM_ERROR(
        LatencyTable(p, 14, 0.5, LatencyTable::Granularity::Pair, 0),
        "node count");
}

} // namespace
