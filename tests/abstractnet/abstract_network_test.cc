/**
 * @file
 * Tests for the abstract network model in Static and Tuned modes.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <vector>

#include "abstractnet/abstract_network.hh"
#include "abstractnet/latency_model.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::abstractnet;
using noc::MsgClass;
using noc::PacketPtr;

struct AbsFixture
{
    explicit AbsFixture(AbstractNetwork::Mode mode,
                        noc::NocParams p = noc::NocParams(),
                        Config cfg = Config())
        : sim(std::move(cfg)), net(sim, "abs", p, mode)
    {
        net.setDeliveryHandler(
            [this](const PacketPtr &pkt) { delivered.push_back(pkt); });
    }

    PacketPtr
    send(NodeId src, NodeId dst, Tick when, std::uint32_t bytes = 8,
         MsgClass cls = MsgClass::Request)
    {
        auto pkt = noc::makePacket(next_id++, src, dst, cls, bytes, when);
        net.inject(pkt);
        return pkt;
    }

    Simulation sim;
    AbstractNetwork net;
    std::vector<PacketPtr> delivered;
    PacketId next_id = 1;
};

TEST(AbstractNetwork, StaticZeroLoadMatchesFormula)
{
    noc::NocParams p;
    AbsFixture f(AbstractNetwork::Mode::Static, p);
    auto pkt = f.send(0, 63, 10, 64);
    f.net.advanceTo(1000);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(pkt->latency(), zeroLoadLatency(p, 14, 4));
    EXPECT_EQ(pkt->hops, 14u);
}

TEST(AbstractNetwork, DeliveriesInTickOrder)
{
    AbsFixture f(AbstractNetwork::Mode::Static);
    f.send(0, 63, 100);
    f.send(0, 1, 100);
    f.send(5, 6, 0);
    f.net.advanceTo(1000);
    ASSERT_EQ(f.delivered.size(), 3u);
    for (std::size_t i = 1; i < f.delivered.size(); ++i)
        EXPECT_LE(f.delivered[i - 1]->deliver_tick,
                  f.delivered[i]->deliver_tick);
}

TEST(AbstractNetwork, AdvanceToOnlyDeliversDue)
{
    AbsFixture f(AbstractNetwork::Mode::Static);
    auto a = f.send(0, 1, 0);
    auto b = f.send(0, 63, 0);
    f.net.advanceTo(a->deliver_tick);
    EXPECT_EQ(f.delivered.size(), 1u);
    EXPECT_FALSE(f.net.idle());
    f.net.advanceTo(b->deliver_tick);
    EXPECT_EQ(f.delivered.size(), 2u);
    EXPECT_TRUE(f.net.idle());
}

TEST(AbstractNetwork, ContentionRaisesLatencyUnderLoad)
{
    Config cfg;
    cfg.set("abstract.window", 64);
    AbsFixture f(AbstractNetwork::Mode::Static, noc::NocParams(),
                 std::move(cfg));
    // Saturating offered load for a while...
    Tick t = 0;
    for (int i = 0; i < 5000; ++i) {
        t = static_cast<Tick>(i / 16); // 16 packets per cycle
        f.send(static_cast<NodeId>(i % 64),
               static_cast<NodeId>((i * 13 + 1) % 64), t, 64);
        f.net.advanceTo(t);
    }
    EXPECT_GT(f.net.utilization(), 0.2);
    auto loaded = f.send(0, 63, t, 64);
    f.net.advanceTo(t + 100000);
    noc::NocParams p;
    EXPECT_GT(loaded->latency(), zeroLoadLatency(p, 14, 4));
}

TEST(AbstractNetwork, TunedModeUsesTable)
{
    AbsFixture f(AbstractNetwork::Mode::Tuned);
    // Feed the table a large observed latency for distance 1.
    for (int i = 0; i < 100; ++i)
        f.net.table().observe(0, 1, 1, 91);
    auto pkt = f.send(0, 1, 0, 8);
    f.net.advanceTo(1000);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(pkt->latency(), 91u);
}

TEST(AbstractNetwork, TunedModeFallsBackToSeedWithoutObservations)
{
    noc::NocParams p;
    AbsFixture f(AbstractNetwork::Mode::Tuned, p);
    auto pkt = f.send(0, 9, 0, 8); // 2 hops
    f.net.advanceTo(1000);
    EXPECT_EQ(pkt->latency(), zeroLoadLatency(p, 2, 1));
}

TEST(AbstractNetwork, LateInjectionStartsNow)
{
    AbsFixture f(AbstractNetwork::Mode::Static);
    f.send(5, 6, 0);
    f.net.advanceTo(500);
    auto late = f.send(0, 1, 100); // inject tick in the model's past
    EXPECT_GE(late->enter_tick, 500u);
    f.net.advanceTo(1000);
    EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(AbstractNetwork, StatsCountDeliveries)
{
    AbsFixture f(AbstractNetwork::Mode::Static);
    for (int i = 0; i < 10; ++i)
        f.send(static_cast<NodeId>(i), static_cast<NodeId>(63 - i), 0);
    f.net.advanceTo(10000);
    EXPECT_DOUBLE_EQ(f.net.packetsInjected.value(), 10.0);
    EXPECT_DOUBLE_EQ(f.net.packetsDelivered.value(), 10.0);
    EXPECT_EQ(f.net.totalLatency.count(), 10u);
}

TEST(AbstractNetwork, InvalidNodeIsFatal)
{
    AbsFixture f(AbstractNetwork::Mode::Static);
    auto pkt = noc::makePacket(1, 0, 999, MsgClass::Request, 8, 0);
    EXPECT_SIM_ERROR(f.net.inject(pkt), "outside");
}

} // namespace
