/**
 * @file
 * Tests for the open-addressing FlatMap: the property that matters to
 * checkpointing is that iteration visits keys in ascending order, so a
 * FlatMap-backed table serializes to the same bytes as the std::map it
 * replaced. We drive both containers with the same operation sequence
 * and require identical contents and identical iteration order at
 * every checkpoint.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/expect_error.hh"
#include "sim/flat_map.hh"

namespace
{

using rasim::FlatMap;

/** Deterministic 64-bit generator (no global random state in tests). */
class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return state_ >> 16;
    }

  private:
    std::uint64_t state_;
};

template <typename K, typename V>
void
expectSameAsReference(const FlatMap<K, V> &fm, const std::map<K, V> &ref)
{
    ASSERT_EQ(fm.size(), ref.size());
    auto it = ref.begin();
    for (const auto &[key, value] : fm) {
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(key, it->first);
        EXPECT_EQ(value, it->second);
        ++it;
    }
    EXPECT_EQ(it, ref.end());
}

TEST(FlatMap, BasicInsertFindErase)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    m[7] = 70;
    m[3] = 30;
    m[11] = 110;
    EXPECT_EQ(m.size(), 3u);
    EXPECT_TRUE(m.contains(7));
    EXPECT_FALSE(m.contains(8));
    ASSERT_NE(m.find(3), nullptr);
    EXPECT_EQ(*m.find(3), 30);
    EXPECT_EQ(m.find(99), nullptr);
    EXPECT_EQ(m.at(11), 110);
    EXPECT_EQ(m.erase(3), 1u);
    EXPECT_EQ(m.erase(3), 0u);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_FALSE(m.contains(3));
}

TEST(FlatMap, EmplaceDoesNotOverwrite)
{
    FlatMap<std::uint64_t, std::string> m;
    EXPECT_TRUE(m.emplace(1, "first"));
    EXPECT_FALSE(m.emplace(1, "second"));
    EXPECT_EQ(m.at(1), "first");
    m.insertOrAssign(1, "third");
    EXPECT_EQ(m.at(1), "third");
}

TEST(FlatMap, AtOnMissingKeyPanics)
{
    FlatMap<std::uint64_t, int> m;
    m[1] = 1;
    EXPECT_SIM_ERROR(m.at(2), "not present");
}

TEST(FlatMap, IterationIsAscendingByKey)
{
    FlatMap<std::uint64_t, int> m;
    // Insertion order deliberately scrambled.
    for (std::uint64_t k : {42u, 7u, 100u, 1u, 55u, 13u})
        m[k] = static_cast<int>(k);
    std::vector<std::uint64_t> keys;
    for (const auto &[key, value] : m)
        keys.push_back(key);
    std::vector<std::uint64_t> expect = {1, 7, 13, 42, 55, 100};
    EXPECT_EQ(keys, expect);
}

TEST(FlatMap, PropertyAgainstStdMap)
{
    // Same mixed op sequence into FlatMap and std::map; compare
    // contents and iteration order at every checkpoint. The key range
    // is kept small so inserts collide with existing keys and erases
    // usually hit, which exercises overwrite and backward-shift paths.
    FlatMap<std::uint64_t, std::uint64_t> fm;
    std::map<std::uint64_t, std::uint64_t> ref;
    Lcg rng(0x5eed);

    for (int op = 0; op < 20000; ++op) {
        std::uint64_t key = rng.next() % 512;
        std::uint64_t val = rng.next();
        switch (rng.next() % 4) {
          case 0:
          case 1: // insert-or-assign (most common: keeps the map full)
            fm.insertOrAssign(key, val);
            ref[key] = val;
            break;
          case 2: // emplace (no overwrite)
            {
                bool inserted = fm.emplace(key, val);
                bool ref_inserted = ref.emplace(key, val).second;
                EXPECT_EQ(inserted, ref_inserted);
            }
            break;
          case 3: // erase
            EXPECT_EQ(fm.erase(key), ref.erase(key));
            break;
        }
        if (op % 1000 == 0)
            expectSameAsReference(fm, ref);
    }
    expectSameAsReference(fm, ref);

    // Drain in iteration order: erasing every key leaves both empty.
    std::vector<std::uint64_t> keys;
    for (const auto &[key, value] : fm)
        keys.push_back(key);
    for (std::uint64_t k : keys) {
        EXPECT_EQ(fm.erase(k), 1u);
        ref.erase(k);
    }
    EXPECT_TRUE(fm.empty());
    expectSameAsReference(fm, ref);
}

TEST(FlatMap, GrowthPreservesContents)
{
    FlatMap<std::uint64_t, std::uint64_t> fm;
    std::map<std::uint64_t, std::uint64_t> ref;
    // Push far past the initial capacity so several rehashes happen.
    for (std::uint64_t k = 0; k < 5000; ++k) {
        std::uint64_t key = k * 2654435761u; // scattered keys
        fm.insertOrAssign(key, k);
        ref[key] = k;
    }
    expectSameAsReference(fm, ref);
}

TEST(FlatMap, ClearEmptiesButStaysUsable)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k] = static_cast<int>(k);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(5), nullptr);
    m[5] = 50;
    EXPECT_EQ(m.at(5), 50);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ValuePointersStableUntilMutation)
{
    FlatMap<std::uint64_t, int> m;
    m[1] = 10;
    m[2] = 20;
    int *p = m.find(1);
    ASSERT_NE(p, nullptr);
    *p = 11; // mutation through find() is visible
    EXPECT_EQ(m.at(1), 11);
}

} // namespace
