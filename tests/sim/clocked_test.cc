/**
 * @file
 * Tests for clock domains and cycle/tick conversion.
 */

#include <gtest/gtest.h>

#include "sim/clocked.hh"
#include "sim/eventq.hh"

namespace
{

using rasim::Clocked;
using rasim::ClockDomain;
using rasim::EventQueue;

TEST(ClockDomain, UnitPeriodIsIdentity)
{
    ClockDomain d("unit", 1);
    EXPECT_EQ(d.cyclesToTicks(17), 17u);
    EXPECT_EQ(d.ticksToCycles(17), 17u);
    EXPECT_EQ(d.edgeAtOrAfter(17), 17u);
}

TEST(ClockDomain, EdgeRoundsUp)
{
    ClockDomain d("x", 10);
    EXPECT_EQ(d.edgeAtOrAfter(0), 0u);
    EXPECT_EQ(d.edgeAtOrAfter(1), 10u);
    EXPECT_EQ(d.edgeAtOrAfter(10), 10u);
    EXPECT_EQ(d.edgeAtOrAfter(11), 20u);
}

TEST(ClockDomain, Conversions)
{
    ClockDomain d("x", 4);
    EXPECT_EQ(d.cyclesToTicks(3), 12u);
    EXPECT_EQ(d.ticksToCycles(13), 3u);
}

TEST(Clocked, CurCycleFollowsQueue)
{
    EventQueue eq;
    ClockDomain d("x", 5);
    Clocked c(eq, d);
    EXPECT_EQ(c.curCycle(), 0u);
    eq.serviceUntil(12);
    EXPECT_EQ(c.curCycle(), 2u);
}

TEST(Clocked, ClockEdgeAligned)
{
    EventQueue eq;
    ClockDomain d("x", 5);
    Clocked c(eq, d);
    eq.serviceUntil(12);
    EXPECT_EQ(c.clockEdge(), 15u);    // next edge at/after 12
    EXPECT_EQ(c.clockEdge(2), 25u);   // two further edges
    eq.serviceUntil(15);
    EXPECT_EQ(c.clockEdge(), 15u);    // exactly on an edge
    EXPECT_EQ(c.clockEdge(1), 20u);
}

} // namespace
