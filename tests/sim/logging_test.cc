/**
 * @file
 * Tests for the error taxonomy and the throwing error mode: SimError
 * kinds, fatal()/panic() rebasing under logging::ThrowOnError, guard
 * nesting and thread-locality, and the classic terminating behaviour
 * when no guard is active.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace
{

using namespace rasim;

TEST(SimError, WhatCarriesKindTag)
{
    SimError e(ErrorKind::Deadlock, "router 3 wedged");
    EXPECT_EQ(e.kind(), ErrorKind::Deadlock);
    EXPECT_EQ(std::string(e.what()), "[deadlock] router 3 wedged");
}

TEST(SimError, KindNames)
{
    EXPECT_STREQ(toString(ErrorKind::Config), "config");
    EXPECT_STREQ(toString(ErrorKind::Internal), "internal");
    EXPECT_STREQ(toString(ErrorKind::Conservation), "conservation");
    EXPECT_STREQ(toString(ErrorKind::Deadlock), "deadlock");
    EXPECT_STREQ(toString(ErrorKind::Divergence), "divergence");
    EXPECT_STREQ(toString(ErrorKind::Timeout), "timeout");
}

TEST(ThrowOnError, FatalThrowsConfigKind)
{
    logging::ThrowOnError guard;
    try {
        fatal("bad knob ", 42);
        FAIL() << "fatal() returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("bad knob 42"),
                  std::string::npos);
    }
}

TEST(ThrowOnError, PanicThrowsInternalKind)
{
    logging::ThrowOnError guard;
    try {
        panic("broken invariant");
        FAIL() << "panic() returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Internal);
        EXPECT_NE(std::string(e.what()).find("broken invariant"),
                  std::string::npos);
    }
}

TEST(ThrowOnError, GuardNestsAndRestores)
{
    EXPECT_FALSE(logging::throwing());
    {
        logging::ThrowOnError outer;
        EXPECT_TRUE(logging::throwing());
        {
            logging::ThrowOnError inner;
            EXPECT_TRUE(logging::throwing());
        }
        // The outer guard is still alive.
        EXPECT_TRUE(logging::throwing());
    }
    EXPECT_FALSE(logging::throwing());
}

TEST(ThrowOnError, GuardIsThreadLocal)
{
    logging::ThrowOnError guard;
    ASSERT_TRUE(logging::throwing());
    bool other_thread_throwing = true;
    std::thread t([&] { other_thread_throwing = logging::throwing(); });
    t.join();
    // The guard on this thread does not leak into other threads.
    EXPECT_FALSE(other_thread_throwing);
}

TEST(ThrowOnError, SurvivesAStackUnwind)
{
    // A guard destroyed by an unwinding exception must still restore
    // the terminating behaviour.
    try {
        logging::ThrowOnError guard;
        fatal("unwind me");
    } catch (const SimError &) {
    }
    EXPECT_FALSE(logging::throwing());
}

// The classic behaviour is retained when no guard is active: fatal()
// exits with status 1, panic() aborts. One death test each keeps the
// default-terminating contract pinned down.
TEST(LoggingDeathTest, FatalExitsWithoutGuard)
{
    EXPECT_EXIT(fatal("configuration is broken"),
                ::testing::ExitedWithCode(1), "configuration is broken");
}

TEST(LoggingDeathTest, PanicAbortsWithoutGuard)
{
    EXPECT_DEATH(panic("simulator bug"), "simulator bug");
}

} // namespace
