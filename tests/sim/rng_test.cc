/**
 * @file
 * Tests for the deterministic PCG32 generator: reproducibility, stream
 * independence and distribution sanity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace
{

using rasim::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42, 7), b(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1, 7), b(2, 7);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3, 3);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, RangeRespectsBound)
{
    Rng r(5, 5);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i) {
        std::uint32_t v = r.range(10);
        ASSERT_LT(v, 10u);
        ++counts[v];
    }
    // Roughly uniform: every bucket within 10% of expectation.
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 1000);
}

TEST(Rng, RangeInclusiveCoversEndpoints)
{
    Rng r(6, 6);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        std::uint32_t v = r.rangeInclusive(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(7, 7);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateCases)
{
    Rng r(8, 8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r(9, 9);
    double sum = 0.0;
    const int n = 100000;
    const double p = 0.25;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricWithCertaintyIsZero)
{
    Rng r(10, 10);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(11, 11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, StateRoundTripResumesBitIdentically)
{
    Rng a(42, 7);
    for (int i = 0; i < 137; ++i)
        a.next();
    const Rng::State snap = a.state();
    std::vector<std::uint32_t> expect;
    for (int i = 0; i < 1000; ++i)
        expect.push_back(a.next());

    // setState must fully overwrite an arbitrarily-seeded generator.
    Rng b(9999, 1);
    b.setState(snap);
    EXPECT_TRUE(b.state() == snap);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(b.next(), expect[i]);
}

TEST(Rng, StateCapturesMidDrawPosition)
{
    // Snapshots taken at different points must differ: the state is
    // the position in the stream, not just the seed.
    Rng r(13, 13);
    const Rng::State s0 = r.state();
    r.next();
    const Rng::State s1 = r.state();
    EXPECT_FALSE(s0 == s1);
}

TEST(Rng, Next64CombinesTwoDraws)
{
    Rng a(12, 12), b(12, 12);
    std::uint64_t hi = a.next();
    std::uint64_t lo = a.next();
    EXPECT_EQ(b.next64(), (hi << 32) | lo);
}

} // namespace
