/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * (de|re)scheduling, lambda events and time advancement.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <vector>

#include "sim/eventq.hh"

namespace
{

using rasim::Event;
using rasim::EventQueue;
using rasim::Tick;

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id,
                   Priority pri = Event::default_pri)
        : Event(pri), log_(log), id_(id)
    {
    }

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_FALSE(eq.serviceOne());
}

TEST(EventQueue, ServicesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&a, 30);
    eq.schedule(&b, 10);
    eq.schedule(&c, 20);
    while (eq.serviceOne()) {
    }
    EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrdersByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent low(log, 1, 10);
    RecordingEvent high(log, 2, -10);
    RecordingEvent first(log, 3);
    RecordingEvent second(log, 4);
    eq.schedule(&first, 5);
    eq.schedule(&low, 5);
    eq.schedule(&high, 5);
    eq.schedule(&second, 5);
    while (eq.serviceOne()) {
    }
    EXPECT_EQ(log, (std::vector<int>{2, 3, 4, 1}));
}

TEST(EventQueue, ScheduledFlagTracksState)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent ev(log, 1);
    EXPECT_FALSE(ev.scheduled());
    eq.schedule(&ev, 7);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 7u);
    eq.serviceOne();
    EXPECT_FALSE(ev.scheduled());
    EXPECT_EQ(eq.curTick(), 7u);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    while (eq.serviceOne()) {
    }
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    while (eq.serviceOne()) {
    }
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, RescheduleWorksOnIdleEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    eq.reschedule(&a, 4);
    EXPECT_TRUE(a.scheduled());
    eq.serviceOne();
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueue, LambdaEventsRunAndSelfDelete)
{
    EventQueue eq;
    int runs = 0;
    eq.scheduleLambda(3, [&] { ++runs; });
    eq.scheduleLambda(3, [&] { ++runs; });
    while (eq.serviceOne()) {
    }
    EXPECT_EQ(runs, 2);
}

TEST(EventQueue, EventsScheduledDuringServiceRun)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.scheduleLambda(1, [&] {
        ticks.push_back(eq.curTick());
        eq.scheduleLambda(5, [&] { ticks.push_back(eq.curTick()); });
    });
    while (eq.serviceOne()) {
    }
    EXPECT_EQ(ticks, (std::vector<Tick>{1, 5}));
}

TEST(EventQueue, ZeroDelaySelfScheduleAtSameTickRuns)
{
    EventQueue eq;
    int runs = 0;
    eq.scheduleLambda(2, [&] {
        ++runs;
        if (runs < 3)
            eq.scheduleLambda(2, [&] { ++runs; });
    });
    while (eq.serviceOne()) {
    }
    EXPECT_EQ(runs, 2); // chain of one re-schedule, then stops
    EXPECT_EQ(eq.curTick(), 2u);
}

TEST(EventQueue, ServiceUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.serviceUntil(100);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueue, ServiceUntilRunsOnlyDueEvents)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 50);
    eq.schedule(&b, 150);
    eq.serviceUntil(100);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.curTick(), 100u);
    EXPECT_TRUE(b.scheduled());
    eq.serviceUntil(200);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ServiceUntilInclusiveBoundary)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    eq.schedule(&a, 100);
    eq.serviceUntil(100);
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueue, NumProcessedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.scheduleLambda(i, [] {});
    while (eq.serviceOne()) {
    }
    EXPECT_EQ(eq.numProcessed(), 5u);
}

TEST(EventQueue, PastScheduleDies)
{
    EventQueue eq;
    eq.scheduleLambda(10, [] {});
    while (eq.serviceOne()) {
    }
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_SIM_ERROR(eq.schedule(&a, 5), "in the past");
}

TEST(EventQueue, DoubleScheduleDies)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    eq.schedule(&a, 5);
    EXPECT_SIM_ERROR(eq.schedule(&a, 6), "already-scheduled");
    eq.deschedule(&a);
}

TEST(EventQueue, PendingLambdaEventsReclaimedOnDestruction)
{
    // Only checks for the absence of leaks/crashes under ASan-less
    // builds; the queue must delete pending lambda events.
    auto *eq = new EventQueue;
    eq->scheduleLambda(10, [] {});
    delete eq;
}

} // namespace
