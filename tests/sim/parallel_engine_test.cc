/**
 * @file
 * Tests for the shared execution-engine layer: the forEach() coverage
 * property every engine must satisfy, pool reuse across phases,
 * exception safety (a throwing phase must neither deadlock nor poison
 * the pool), and the worker-count API.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/parallel_engine.hh"
#include "sim/step_engine.hh"

namespace
{

using namespace rasim;

/** Engines under test: serial reference plus pools of varying width. */
std::vector<std::unique_ptr<StepEngine>>
allEngines()
{
    std::vector<std::unique_ptr<StepEngine>> engines;
    engines.push_back(std::make_unique<SerialEngine>());
    for (int workers : {0, 1, 3, 7})
        engines.push_back(std::make_unique<ParallelEngine>(workers));
    return engines;
}

TEST(StepEngine, ForEachVisitsEveryIndexExactlyOnce)
{
    // The coverage property everything rests on, across the range
    // sizes the networks actually dispatch (empty, single node, odd
    // remainders, larger than any partition).
    for (auto &engine : allEngines()) {
        for (std::size_t n : {0UL, 1UL, 7UL, 1024UL}) {
            std::vector<std::atomic<int>> hits(n);
            engine->forEach(n, [&](std::size_t i) {
                ASSERT_LT(i, n);
                hits[i]++;
            });
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << engine->name() << " n=" << n << " i=" << i;
        }
    }
}

TEST(ParallelEngine, ReusableAcrossManyPhases)
{
    ParallelEngine engine(2);
    std::atomic<long> total{0};
    for (int round = 0; round < 500; ++round)
        engine.forEach(16, [&](std::size_t i) {
            total += static_cast<long>(i);
        });
    EXPECT_EQ(total.load(), 500L * (15 * 16 / 2));
    EXPECT_EQ(engine.phasesRun(), 500u);
}

TEST(ParallelEngine, WorkerCountApi)
{
    ParallelEngine engine(3);
    EXPECT_EQ(engine.numWorkers(), 3);
    ParallelEngine none(0);
    EXPECT_EQ(none.numWorkers(), 0);
    EXPECT_GE(ParallelEngine::defaultWorkerCount(), 1);
}

TEST(ParallelEngine, NegativeWorkerCountIsFatal)
{
    EXPECT_SIM_ERROR(ParallelEngine(-1), "non-negative");
}

TEST(ParallelEngine, ExceptionFromPhasePropagatesWithoutDeadlock)
{
    // Throw from different partitions (caller-owned index 0, a
    // worker-owned high index) and at several pool widths; forEach
    // must rethrow after the barrier and the pool must stay usable.
    for (int workers : {0, 1, 3}) {
        ParallelEngine engine(workers);
        for (std::size_t bad : {0UL, 1023UL}) {
            EXPECT_THROW(
                engine.forEach(1024,
                               [bad](std::size_t i) {
                                   if (i == bad)
                                       throw std::runtime_error("boom");
                               }),
                std::runtime_error)
                << "workers=" << workers << " bad=" << bad;

            // The pool survives: the next phase covers every index.
            std::vector<std::atomic<int>> hits(1024);
            engine.forEach(1024, [&](std::size_t i) { hits[i]++; });
            for (std::size_t i = 0; i < 1024; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "workers=" << workers << " i=" << i;
        }
    }
}

TEST(ParallelEngine, ConcurrentThrowsSurfaceFirstBySlotOrder)
{
    // Every partition throws; exactly one exception must surface per
    // forEach, repeatedly, without wedging the barrier.
    ParallelEngine engine(3);
    for (int round = 0; round < 10; ++round) {
        EXPECT_THROW(engine.forEach(64,
                                    [](std::size_t) {
                                        throw std::runtime_error("all");
                                    }),
                     std::runtime_error);
    }
    std::atomic<int> count{0};
    engine.forEach(64, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 64);
}

} // namespace
