/**
 * @file
 * Tests for the Simulation container and SimObject lifecycle.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <string>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "stats/output.hh"
#include "stats/stat.hh"

namespace
{

using rasim::Config;
using rasim::SimObject;
using rasim::Simulation;
using rasim::Tick;

class Probe : public SimObject
{
  public:
    Probe(Simulation &sim, const std::string &name,
          std::vector<std::string> &log, SimObject *parent = nullptr)
        : SimObject(sim, name, parent), log_(log)
    {
    }

    void init() override { log_.push_back(name() + ".init"); }

  private:
    std::vector<std::string> &log_;
};

TEST(Simulation, InitCalledOnceInConstructionOrder)
{
    Simulation sim;
    std::vector<std::string> log;
    Probe a(sim, "a", log);
    Probe b(sim, "b", log);
    sim.run(10);
    sim.run(20);
    EXPECT_EQ(log, (std::vector<std::string>{"a.init", "b.init"}));
}

TEST(Simulation, RunStopsAtHorizon)
{
    Simulation sim;
    int runs = 0;
    sim.eventq().scheduleLambda(5, [&] { ++runs; });
    sim.eventq().scheduleLambda(15, [&] { ++runs; });
    Tick t = sim.run(10);
    EXPECT_EQ(t, 10u);
    EXPECT_EQ(runs, 1);
    t = sim.run(20);
    EXPECT_EQ(runs, 2);
}

TEST(Simulation, ExitRequestStopsLoop)
{
    Simulation sim;
    int runs = 0;
    sim.eventq().scheduleLambda(5, [&] {
        ++runs;
        sim.exitSimLoop("done early");
    });
    sim.eventq().scheduleLambda(6, [&] { ++runs; });
    sim.run(100);
    EXPECT_TRUE(sim.exitRequested());
    EXPECT_EQ(sim.exitReason(), "done early");
    EXPECT_EQ(runs, 1);
    sim.clearExit();
    sim.run(100);
    EXPECT_EQ(runs, 2);
}

TEST(Simulation, DrainedQueueStopsAtLastEvent)
{
    Simulation sim;
    sim.eventq().scheduleLambda(7, [] {});
    Tick t = sim.run();
    EXPECT_EQ(t, 7u);
}

TEST(Simulation, MakeRngIsDeterministicPerStream)
{
    Config cfg;
    cfg.set("sim.seed", 123);
    Simulation s1(cfg), s2(cfg);
    auto a = s1.makeRng(5);
    auto b = s2.makeRng(5);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
    auto c = s1.makeRng(6);
    EXPECT_NE(s1.makeRng(5).next(), c.next());
}

TEST(Simulation, ObjectsFormStatsHierarchy)
{
    Simulation sim;
    std::vector<std::string> log;
    Probe parent(sim, "net", log);
    Probe child(sim, "router0", log, &parent);
    rasim::stats::Scalar s(&child, "pkts", "packets seen");
    s += 3;
    double v = rasim::stats::findValue(sim.statsRoot(),
                                       "system.net.router0.pkts");
    EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Simulation, ClockPeriodFromConfig)
{
    Config cfg;
    cfg.set("sim.clock_period", 4);
    Simulation sim(cfg);
    EXPECT_EQ(sim.rootClock().period(), 4u);
}

TEST(Simulation, LateConstructionDies)
{
    Simulation sim;
    std::vector<std::string> log;
    Probe a(sim, "a", log);
    sim.run(1);
    EXPECT_SIM_ERROR(Probe(sim, "late", log), "after simulation start");
}

} // namespace
