/**
 * @file
 * Tests for the checkpoint archive layer: round-trips of every
 * primitive, nested sections, the CRC32 integrity trailer, and the
 * validation split — corrupt images fail non-fatally (so restores can
 * fall back to an older checkpoint) while structural misuse of a valid
 * image panics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "common/expect_error.hh"
#include "sim/flat_map.hh"
#include "sim/serialize.hh"

namespace
{

using rasim::ArchiveReader;
using rasim::ArchiveWriter;

std::string
sampleArchive()
{
    ArchiveWriter aw;
    aw.beginSection("outer");
    aw.putBool(true);
    aw.putU8(0xab);
    aw.putU32(0xdeadbeef);
    aw.putU64(0x0123456789abcdefULL);
    aw.putI64(-42);
    aw.putDouble(3.25);
    aw.beginSection("inner");
    aw.putString("hello archive");
    aw.endSection();
    aw.putU32(7);
    aw.endSection();
    return aw.finish();
}

TEST(Archive, PrimitivesRoundTrip)
{
    ArchiveReader ar(sampleArchive());
    ASSERT_TRUE(ar.ok()) << ar.error();
    EXPECT_EQ(ar.version(), ArchiveWriter::format_version);
    ar.expectSection("outer");
    EXPECT_TRUE(ar.getBool());
    EXPECT_EQ(ar.getU8(), 0xab);
    EXPECT_EQ(ar.getU32(), 0xdeadbeefu);
    EXPECT_EQ(ar.getU64(), 0x0123456789abcdefULL);
    EXPECT_EQ(ar.getI64(), -42);
    EXPECT_DOUBLE_EQ(ar.getDouble(), 3.25);
    ar.expectSection("inner");
    EXPECT_EQ(ar.getString(), "hello archive");
    ar.endSection();
    EXPECT_EQ(ar.getU32(), 7u);
    ar.endSection();
}

TEST(Archive, WriteToStreamMatchesFinish)
{
    ArchiveWriter a, b;
    for (ArchiveWriter *aw : {&a, &b}) {
        aw->beginSection("s");
        aw->putU64(99);
        aw->endSection();
    }
    std::ostringstream os;
    a.writeTo(os);
    EXPECT_EQ(os.str(), b.finish());
}

TEST(Archive, IdenticalContentIdenticalBytes)
{
    // The CRC (and any byte-compare of images) relies on the writer
    // being fully deterministic.
    EXPECT_EQ(sampleArchive(), sampleArchive());
}

TEST(Archive, TruncatedImageRejectedNonFatally)
{
    std::string image = sampleArchive();
    for (std::size_t keep :
         {std::size_t{0}, std::size_t{4}, std::size_t{11},
          image.size() - 1}) {
        ArchiveReader ar(image.substr(0, keep));
        EXPECT_FALSE(ar.ok()) << "kept " << keep << " bytes";
        EXPECT_FALSE(ar.error().empty());
    }
}

TEST(Archive, BitFlipAnywhereRejectedNonFatally)
{
    const std::string image = sampleArchive();
    // Flip one bit in every byte position in turn: magic, version,
    // body and trailer corruption must all be caught.
    for (std::size_t i = 0; i < image.size(); ++i) {
        std::string bad = image;
        bad[i] = static_cast<char>(bad[i] ^ 0x01);
        ArchiveReader ar(std::move(bad));
        EXPECT_FALSE(ar.ok()) << "flip at byte " << i;
    }
}

TEST(Archive, WrongMagicRejected)
{
    std::string image = sampleArchive();
    image[0] = 'X';
    ArchiveReader ar(std::move(image));
    EXPECT_FALSE(ar.ok());
    EXPECT_NE(ar.error().find("magic"), std::string::npos);
}

TEST(Archive, FutureVersionRejected)
{
    std::string image = sampleArchive();
    image[8] = static_cast<char>(ArchiveWriter::format_version + 1);
    // Version is covered by the CRC; patch the trailer so the version
    // check itself is what fires.
    std::uint32_t crc = rasim::crc32(image.data(), image.size() - 4);
    for (int i = 0; i < 4; ++i) {
        image[image.size() - 4 + static_cast<std::size_t>(i)] =
            static_cast<char>((crc >> (8 * i)) & 0xff);
    }
    ArchiveReader ar(std::move(image));
    EXPECT_FALSE(ar.ok());
    EXPECT_NE(ar.error().find("version"), std::string::npos);
}

TEST(Archive, WrongSectionTagPanics)
{
    ArchiveReader ar(sampleArchive());
    ASSERT_TRUE(ar.ok());
    EXPECT_SIM_ERROR(ar.expectSection("wrong"), "section");
}

TEST(Archive, ReadPastSectionEndPanics)
{
    ArchiveWriter aw;
    aw.beginSection("small");
    aw.putU8(1);
    aw.endSection();
    ArchiveReader ar(aw.finish());
    ASSERT_TRUE(ar.ok());
    ar.expectSection("small");
    EXPECT_EQ(ar.getU8(), 1);
    EXPECT_SIM_ERROR(ar.getU64(), "");
}

TEST(Archive, FlatMapWritesSameBytesAsSortedMapLoop)
{
    // The in-flight tables moved from std::map (plus manual
    // sort-before-save loops) onto FlatMap. The archive format is
    // unchanged because FlatMap iterates in ascending key order — the
    // exact bytes the std::map-era code wrote. Checkpoint images from
    // before and after the container swap therefore interoperate.
    rasim::FlatMap<std::uint64_t, std::uint64_t> fm;
    std::map<std::uint64_t, std::uint64_t> ref;
    for (std::uint64_t k : {901u, 4u, 77u, 12u, 500u, 3u, 44u}) {
        fm.insertOrAssign(k, k * 10);
        ref[k] = k * 10;
    }
    fm.erase(77);
    ref.erase(77);

    auto dump = [](const auto &table) {
        ArchiveWriter aw;
        aw.beginSection("table");
        aw.putU64(table.size());
        for (const auto &[key, value] : table) {
            aw.putU64(key);
            aw.putU64(value);
        }
        aw.endSection();
        return aw.finish();
    };
    EXPECT_EQ(dump(fm), dump(ref));
}

TEST(Archive, PutAfterFinishPanics)
{
    ArchiveWriter aw;
    aw.beginSection("s");
    aw.putU8(1);
    aw.endSection();
    aw.finish();
    EXPECT_SIM_ERROR(aw.putU8(2), "");
}

} // namespace
