/**
 * @file
 * Tests for the slab object pool: handle lifetime and refcounting,
 * deterministic index reuse, double-free detection, slab growth
 * accounting, occupancy checkpointing, and the steady-state
 * no-growth guarantee the hot path relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/expect_error.hh"
#include "sim/pool.hh"
#include "sim/serialize.hh"

namespace
{

using rasim::ArchiveReader;
using rasim::ArchiveWriter;
using rasim::Pool;
using rasim::PoolPtr;

struct Payload
{
    std::uint64_t id = 0;
    std::uint64_t value = 0;

    Payload() = default;
    Payload(std::uint64_t i, std::uint64_t v) : id(i), value(v) {}
};

/** A payload that counts destructor runs into a caller's counter. */
struct Tracked
{
    int *dtors = nullptr;
    ~Tracked()
    {
        if (dtors)
            ++*dtors;
    }
};

TEST(Pool, AllocateConstructsAndHandleReads)
{
    Pool<Payload> pool("test");
    PoolPtr<Payload> p = pool.allocate(7u, 42u);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->id, 7u);
    EXPECT_EQ(p->value, 42u);
    EXPECT_EQ(pool.stats().live, 1u);
    EXPECT_EQ(pool.stats().slabs, 1u);
}

TEST(Pool, LastHandleReleasesSlot)
{
    Pool<Tracked> pool("test");
    int dtors = 0;
    {
        PoolPtr<Tracked> a = pool.allocate();
        a->dtors = &dtors;
        PoolPtr<Tracked> b = a; // copy: refcount 2
        EXPECT_EQ(a.useCount(), 2u);
        a.reset();
        EXPECT_EQ(dtors, 0) << "slot freed while a handle remains";
        EXPECT_EQ(pool.stats().live, 1u);
    }
    EXPECT_EQ(dtors, 1);
    EXPECT_EQ(pool.stats().live, 0u);
    EXPECT_EQ(pool.stats().total_released, 1u);
}

TEST(Pool, MoveTransfersOwnershipWithoutRefcountTraffic)
{
    Pool<Payload> pool("test");
    PoolPtr<Payload> a = pool.allocate(1u, 1u);
    PoolPtr<Payload> b = std::move(a);
    EXPECT_FALSE(a);
    ASSERT_TRUE(b);
    EXPECT_EQ(b.useCount(), 1u);
    EXPECT_EQ(pool.stats().live, 1u);
}

TEST(Pool, DeterministicIndexReuseIsLifo)
{
    Pool<Payload> pool("test");
    // First allocations walk the slab front to back...
    PoolPtr<Payload> a = pool.allocate(1u, 0u);
    PoolPtr<Payload> b = pool.allocate(2u, 0u);
    Payload *addr_a = a.get();
    Payload *addr_b = b.get();
    EXPECT_NE(addr_a, addr_b);
    // ...and a released slot is the next one handed out (LIFO), so
    // identical call sequences produce identical placements.
    a.reset();
    PoolPtr<Payload> c = pool.allocate(3u, 0u);
    EXPECT_EQ(c.get(), addr_a);
    b.reset();
    PoolPtr<Payload> d = pool.allocate(4u, 0u);
    EXPECT_EQ(d.get(), addr_b);
}

TEST(Pool, GrowsBySlabAndNeverMovesLiveObjects)
{
    Pool<Payload> pool("test");
    std::vector<PoolPtr<Payload>> held;
    std::vector<Payload *> addrs;
    const std::uint32_t n = Pool<Payload>::slab_slots + 8;
    for (std::uint32_t i = 0; i < n; ++i) {
        held.push_back(pool.allocate(i, i));
        addrs.push_back(held.back().get());
    }
    EXPECT_EQ(pool.stats().slabs, 2u);
    EXPECT_EQ(pool.stats().live, n);
    EXPECT_EQ(pool.stats().peak_live, n);
    // Growth appends a slab; existing slots keep their addresses.
    for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(held[i].get(), addrs[i]);
        EXPECT_EQ(held[i]->id, i);
    }
}

TEST(Pool, SteadyStateChurnNeverGrows)
{
    Pool<Payload> pool("test");
    {
        // Warm up to a working set of 64.
        std::vector<PoolPtr<Payload>> warm;
        for (std::uint64_t i = 0; i < 64; ++i)
            warm.push_back(pool.allocate(i, i));
    }
    auto warm_stats = pool.stats();
    // Steady state: allocate/release far more objects than capacity.
    for (std::uint64_t round = 0; round < 100; ++round) {
        std::vector<PoolPtr<Payload>> live;
        for (std::uint64_t i = 0; i < 64; ++i)
            live.push_back(pool.allocate(i, round));
    }
    EXPECT_EQ(pool.stats().slabs, warm_stats.slabs);
    EXPECT_EQ(pool.stats().capacity, warm_stats.capacity);
    EXPECT_EQ(pool.stats().live, 0u);
    EXPECT_EQ(pool.stats().total_allocated, 64u + 100u * 64u);
}

TEST(Pool, ReleaseIsExactlyOnce)
{
    // The refcount makes a double release unreachable through the
    // handle API: resetting both copies of a handle releases the slot
    // exactly once, and the stats balance afterwards. (The pool's
    // live-flag panic guards against raw-slot corruption; that path
    // is not constructible from outside.)
    Pool<Payload> pool("test");
    PoolPtr<Payload> p = pool.allocate(1u, 1u);
    PoolPtr<Payload> q = p;
    p.reset();
    EXPECT_EQ(pool.stats().live, 1u);
    q.reset();
    EXPECT_EQ(pool.stats().live, 0u);
    EXPECT_EQ(pool.stats().total_released, 1u);
    PoolPtr<Payload> r = pool.allocate(2u, 2u);
    EXPECT_EQ(pool.stats().live, 1u);
    EXPECT_EQ(pool.stats().total_allocated, 2u);
}

TEST(Pool, RegistrySeesNamedPools)
{
    Pool<Payload> pool("registry-probe");
    PoolPtr<Payload> p = pool.allocate(1u, 1u);
    bool found = false;
    for (const auto &[name, stats] : rasim::poolStatsSnapshot()) {
        if (name == "registry-probe") {
            found = true;
            EXPECT_EQ(stats.live, 1u);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_GE(rasim::poolTotalSlabs(), 1u);
}

TEST(Pool, SaveRestoreRoundTripsOccupancyAndPayloads)
{
    Pool<Payload> src("src");
    std::vector<PoolPtr<Payload>> live;
    for (std::uint64_t i = 0; i < 10; ++i)
        live.push_back(src.allocate(i, i * 100));
    // Punch holes so the occupancy map is non-trivial.
    live.erase(live.begin() + 3);
    live.erase(live.begin() + 6);

    ArchiveWriter aw;
    src.save(aw, [](ArchiveWriter &w, const Payload &p) {
        w.putU64(p.id);
        w.putU64(p.value);
    });
    std::string bytes = aw.finish();

    Pool<Payload> dst("dst");
    ArchiveReader ar(std::move(bytes));
    ASSERT_TRUE(ar.ok()) << ar.error();
    std::vector<PoolPtr<Payload>> restored =
        dst.restore(ar, [](ArchiveReader &r) {
            Payload p;
            p.id = r.getU64();
            p.value = r.getU64();
            return p;
        });

    ASSERT_EQ(restored.size(), live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
        EXPECT_EQ(restored[i]->id, live[i]->id);
        EXPECT_EQ(restored[i]->value, live[i]->value);
    }
    EXPECT_EQ(dst.stats().live, live.size());

    // The restored pool allocates into the punched holes first, in
    // ascending index order — same discipline as a cold pool.
    PoolPtr<Payload> n1 = dst.allocate(91u, 0u);
    PoolPtr<Payload> n2 = dst.allocate(92u, 0u);
    EXPECT_TRUE(n1 && n2);
    EXPECT_EQ(dst.stats().live, live.size() + 2);
}

TEST(Pool, RestoreOverLivePoolPanics)
{
    Pool<Payload> src("src");
    ArchiveWriter aw;
    src.save(aw, [](ArchiveWriter &, const Payload &) {});
    std::string bytes = aw.finish();

    Pool<Payload> dst("dst");
    PoolPtr<Payload> blocker = dst.allocate(1u, 1u);
    ArchiveReader ar(std::move(bytes));
    ASSERT_TRUE(ar.ok());
    EXPECT_SIM_ERROR(
        dst.restore(ar, [](ArchiveReader &) { return Payload{}; }),
        "restore over");
}

} // namespace
