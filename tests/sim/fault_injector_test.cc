/**
 * @file
 * Tests for the deterministic fault injector: each fault class fires
 * exactly as keyed, faulty runs are reproducible, and the decorator
 * is transparent when every fault is off.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <chrono>
#include <thread>
#include <vector>

#include "noc/cycle_network.hh"
#include "sim/config.hh"
#include "sim/fault_injector.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;

struct InjectorFixture
{
    explicit InjectorFixture(FaultOptions opts,
                             noc::NocParams p = noc::NocParams())
        : net(sim, "noc", p), inj(net, opts)
    {
        inj.setDeliveryHandler([this](const noc::PacketPtr &pkt) {
            delivered.push_back(pkt);
        });
    }

    noc::PacketPtr
    send(NodeId src, NodeId dst, Tick when)
    {
        auto pkt = noc::makePacket(next_id++, src, dst,
                                   noc::MsgClass::Request, 8, when);
        inj.inject(pkt);
        return pkt;
    }

    Simulation sim;
    noc::CycleNetwork net;
    FaultInjector inj;
    std::vector<noc::PacketPtr> delivered;
    PacketId next_id = 1;
};

TEST(FaultInjector, TransparentWhenAllFaultsOff)
{
    InjectorFixture f(FaultOptions{});
    for (int i = 0; i < 8; ++i)
        f.send(0, 9, static_cast<Tick>(i * 4));
    f.inj.advanceTo(500);
    EXPECT_EQ(f.delivered.size(), 8u);
    EXPECT_EQ(f.inj.dropped(), 0u);
    EXPECT_EQ(f.inj.delayed(), 0u);
    EXPECT_EQ(f.inj.poisoned(), 0u);
    auto acc = f.inj.accounting();
    ASSERT_TRUE(acc.has_value());
    EXPECT_EQ(acc->injected, 8u);
    EXPECT_EQ(acc->delivered, 8u);
    EXPECT_EQ(acc->in_flight, 0u);
}

TEST(FaultInjector, DropEveryNthBreaksConservation)
{
    FaultOptions o;
    o.drop_every = 3;
    InjectorFixture f(o);
    for (int i = 0; i < 9; ++i)
        f.send(0, 9, static_cast<Tick>(i * 4));
    f.inj.advanceTo(500);
    EXPECT_EQ(f.inj.dropped(), 3u);
    EXPECT_EQ(f.delivered.size(), 6u);
    // The loss is visible in the accounting — that is the point.
    auto acc = f.inj.accounting();
    ASSERT_TRUE(acc.has_value());
    EXPECT_EQ(acc->injected - acc->delivered - acc->in_flight, 3u);
}

TEST(FaultInjector, DelayHoldsEveryNthForConfiguredCycles)
{
    FaultOptions o;
    o.delay_every = 2;
    o.delay_cycles = 100;
    InjectorFixture f(o);
    auto p1 = f.send(0, 9, 0); // passes through
    auto p2 = f.send(0, 9, 0); // held until tick 100
    f.inj.advanceTo(60);
    EXPECT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(f.delivered[0]->id, p1->id);
    EXPECT_FALSE(f.inj.idle()); // the held packet keeps it busy
    f.inj.advanceTo(300);
    ASSERT_EQ(f.delivered.size(), 2u);
    EXPECT_EQ(f.inj.delayed(), 1u);
    // The delayed packet could not be delivered before its release.
    EXPECT_GE(f.delivered[1]->deliver_tick, static_cast<Tick>(100));
    EXPECT_EQ(f.delivered[1]->id, p2->id);
}

TEST(FaultInjector, PoisonInflatesReportedLatency)
{
    FaultOptions o;
    o.poison_every = 2;
    o.poison_offset = 10000;
    InjectorFixture f(o);
    f.send(0, 9, 0);
    f.send(0, 9, 0);
    f.inj.advanceTo(500);
    ASSERT_EQ(f.delivered.size(), 2u);
    EXPECT_EQ(f.inj.poisoned(), 1u);
    // Exactly one of the two reported latencies is inflated.
    Tick a = f.delivered[0]->latency(), b = f.delivered[1]->latency();
    EXPECT_EQ((a >= 10000) + (b >= 10000), 1);
}

TEST(FaultInjector, FreezeWindowStopsBackendProgress)
{
    FaultOptions o;
    o.freeze_from = 1;
    o.freeze_until = 200;
    InjectorFixture f(o);
    f.send(0, 9, 0);
    f.inj.advanceTo(150); // inside the freeze window
    EXPECT_EQ(f.delivered.size(), 0u);
    auto acc = f.inj.accounting();
    ASSERT_TRUE(acc.has_value());
    EXPECT_EQ(acc->in_flight, 1u);
    f.inj.advanceTo(400); // past the window: progress resumes
    EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(FaultInjector, StalledRouterWedgesTraffic)
{
    FaultOptions o;
    o.stall_node = 9; // destination router
    InjectorFixture f(o);
    f.send(0, 9, 0);
    f.inj.advanceTo(2000);
    // The stalled router never moves the packet on; it stays in
    // flight forever — a genuine deadlock for the watchdog to catch.
    EXPECT_EQ(f.delivered.size(), 0u);
    auto acc = f.inj.accounting();
    ASSERT_TRUE(acc.has_value());
    EXPECT_EQ(acc->in_flight, 1u);
}

TEST(FaultInjector, StallWindowReleasesOnSchedule)
{
    FaultOptions o;
    o.stall_node = 9;
    o.stall_from = 0;
    o.stall_until = 500;
    InjectorFixture f(o);
    f.send(0, 9, 0);
    f.inj.advanceTo(400);
    EXPECT_EQ(f.delivered.size(), 0u);
    f.inj.advanceTo(1000); // stall released at the 500-tick boundary
    EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(FaultInjector, HangHonoursCooperativeAbort)
{
    FaultOptions o;
    o.hang_ms = 10000; // would burn ten seconds without the abort
    InjectorFixture f(o);
    auto start = std::chrono::steady_clock::now();
    std::thread worker([&] { f.inj.advanceTo(100); });
    // Give the worker a moment to enter the hang loop, then preempt.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    f.inj.requestAbort();
    worker.join();
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EXPECT_EQ(f.inj.aborted(), 1u);
    EXPECT_LT(elapsed, 5.0); // preempted, nowhere near 10 s
    // The abandoned quantum made no progress.
    EXPECT_EQ(f.net.curTime(), 0u);
}

TEST(FaultInjector, FaultyRunsAreReproducible)
{
    auto run = [] {
        FaultOptions o;
        o.drop_every = 5;
        o.delay_every = 3;
        o.delay_cycles = 40;
        o.poison_every = 4;
        InjectorFixture f(o);
        for (int i = 0; i < 60; ++i)
            f.send(static_cast<NodeId>(i % 64),
                   static_cast<NodeId>((i * 13 + 1) % 64),
                   static_cast<Tick>(i * 2));
        f.inj.advanceTo(2000);
        std::vector<std::pair<PacketId, Tick>> out;
        for (const auto &pkt : f.delivered)
            out.emplace_back(pkt->id, pkt->deliver_tick);
        return out;
    };
    EXPECT_EQ(run(), run());
}

TEST(FaultInjector, FromConfigReadsAllKeys)
{
    Config cfg;
    cfg.set("fault.enabled", true);
    cfg.set("fault.drop_every", 7);
    cfg.set("fault.delay_every", 5);
    cfg.set("fault.delay_cycles", 33);
    cfg.set("fault.stall_node", 12);
    cfg.set("fault.stall_from", 100);
    cfg.set("fault.stall_until", 200);
    cfg.set("fault.freeze_from", 300);
    cfg.set("fault.freeze_until", 400);
    cfg.set("fault.poison_every", 9);
    cfg.set("fault.poison_offset", 5000);
    cfg.set("fault.hang_ms", 25);
    auto o = FaultOptions::fromConfig(cfg);
    EXPECT_TRUE(o.enabled);
    EXPECT_EQ(o.drop_every, 7u);
    EXPECT_EQ(o.delay_every, 5u);
    EXPECT_EQ(o.delay_cycles, 33u);
    EXPECT_EQ(o.stall_node, 12);
    EXPECT_EQ(o.stall_from, 100u);
    EXPECT_EQ(o.stall_until, 200u);
    EXPECT_EQ(o.freeze_from, 300u);
    EXPECT_EQ(o.freeze_until, 400u);
    EXPECT_EQ(o.poison_every, 9u);
    EXPECT_EQ(o.poison_offset, 5000u);
    EXPECT_EQ(o.hang_ms, 25u);
}

TEST(FaultInjector, FromConfigRejectsZeroDelay)
{
    Config cfg;
    cfg.set("fault.delay_every", 2);
    cfg.set("fault.delay_cycles", 0);
    EXPECT_SIM_ERROR(FaultOptions::fromConfig(cfg), "delay_cycles");
}

TEST(FaultInjector, FromConfigRejectsZeroPoisonOffset)
{
    Config cfg;
    cfg.set("fault.poison_every", 2);
    cfg.set("fault.poison_offset", 0);
    EXPECT_SIM_ERROR(FaultOptions::fromConfig(cfg), "poison_offset");
}

} // namespace
