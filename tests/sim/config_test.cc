/**
 * @file
 * Tests for the typed configuration store.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace
{

using rasim::Config;

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_FALSE(c.has("x"));
    EXPECT_EQ(c.getString("x", "d"), "d");
    EXPECT_EQ(c.getInt("x", -3), -3);
    EXPECT_EQ(c.getUInt("x", 9u), 9u);
    EXPECT_DOUBLE_EQ(c.getDouble("x", 2.5), 2.5);
    EXPECT_TRUE(c.getBool("x", true));
}

TEST(Config, SetAndGetTyped)
{
    Config c;
    c.set("a.str", std::string("hello"));
    c.set("a.int", std::int64_t(-42));
    c.set("a.uint", std::uint64_t(1ULL << 40));
    c.set("a.dbl", 3.25);
    c.set("a.bool", true);
    EXPECT_EQ(c.getString("a.str", ""), "hello");
    EXPECT_EQ(c.getInt("a.int", 0), -42);
    EXPECT_EQ(c.getUInt("a.uint", 0), 1ULL << 40);
    EXPECT_DOUBLE_EQ(c.getDouble("a.dbl", 0), 3.25);
    EXPECT_TRUE(c.getBool("a.bool", false));
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
        c.set("k", std::string(t));
        EXPECT_TRUE(c.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off", "FALSE", "No"}) {
        c.set("k", std::string(f));
        EXPECT_FALSE(c.getBool("k", true)) << f;
    }
}

TEST(Config, HexIntegersParse)
{
    Config c;
    c.set("k", std::string("0x10"));
    EXPECT_EQ(c.getUInt("k", 0), 16u);
    EXPECT_EQ(c.getInt("k", 0), 16);
}

TEST(Config, ParseArg)
{
    Config c;
    c.parseArg("noc.vcs = 4");
    EXPECT_EQ(c.getUInt("noc.vcs", 0), 4u);
}

TEST(Config, ParseArgsSkipsNonAssignments)
{
    Config c;
    const char *argv[] = {"prog", "--help", "a=1", "b = two"};
    c.parseArgs(4, const_cast<char **>(argv));
    EXPECT_EQ(c.getUInt("a", 0), 1u);
    EXPECT_EQ(c.getString("b", ""), "two");
    EXPECT_FALSE(c.has("--help"));
}

TEST(Config, OverwriteTakesLastValue)
{
    Config c;
    c.set("k", 1);
    c.set("k", 2);
    EXPECT_EQ(c.getInt("k", 0), 2);
}

TEST(Config, LoadFileParsesAndIgnoresComments)
{
    std::string path = testing::TempDir() + "/rasim_config_test.cfg";
    {
        std::ofstream out(path);
        out << "# a comment\n"
            << "noc.rows = 8\n"
            << "noc.cols=8   # trailing comment\n"
            << "\n"
            << "cpu.count = 64\n";
    }
    Config c;
    c.loadFile(path);
    EXPECT_EQ(c.getUInt("noc.rows", 0), 8u);
    EXPECT_EQ(c.getUInt("noc.cols", 0), 8u);
    EXPECT_EQ(c.getUInt("cpu.count", 0), 64u);
    std::remove(path.c_str());
}

TEST(Config, KeysWithPrefix)
{
    Config c;
    c.set("noc.a", 1);
    c.set("noc.b", 2);
    c.set("cpu.a", 3);
    auto keys = c.keysWithPrefix("noc.");
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "noc.a");
    EXPECT_EQ(keys[1], "noc.b");
}

TEST(Config, MalformedIntIsFatal)
{
    Config c;
    c.set("k", std::string("notanumber"));
    EXPECT_SIM_ERROR(c.getInt("k", 0), "not an integer");
}

TEST(Config, NegativeForUnsignedIsFatal)
{
    Config c;
    c.set("k", std::string("-5"));
    EXPECT_SIM_ERROR(c.getUInt("k", 0), "not an unsigned");
}

TEST(Config, RequireMissingIsFatal)
{
    Config c;
    EXPECT_SIM_ERROR(c.requireString("missing"), "missing");
}

TEST(Config, UnreadKeysTrackEveryGetterAndHas)
{
    Config c;
    c.set("noc.rows", 8);
    c.set("noc.cols", 8);
    c.set("noc.colums", 4); // the classic typo — nobody reads it
    EXPECT_EQ(c.unreadKeysWithPrefix("noc.").size(), 3u);
    (void)c.getUInt("noc.rows", 0);
    (void)c.has("noc.cols"); // has() counts as a read too
    auto unread = c.unreadKeysWithPrefix("noc.");
    ASSERT_EQ(unread.size(), 1u);
    EXPECT_EQ(unread[0], "noc.colums");
    // Prefix filtering: an unrelated key is not reported under noc.
    c.set("cpu.count", 64);
    EXPECT_EQ(c.unreadKeysWithPrefix("noc.").size(), 1u);
}

TEST(Config, WarnUnreadWarnsOncePerMisspelledKey)
{
    Config c;
    c.set("mem.l1_sets", 16);
    c.set("mem.l1_stes", 32); // typo
    c.set("noc.colums", 4);   // typo
    (void)c.getUInt("mem.l1_sets", 0);
    auto before = rasim::warnCount();
    c.warnUnread({"mem.", "noc."});
    EXPECT_EQ(rasim::warnCount() - before, 2u);
}

TEST(Config, CopiesCarryReadMarks)
{
    Config c;
    c.set("a.k", 1);
    (void)c.getInt("a.k", 0);
    Config copy = c;
    EXPECT_TRUE(copy.unreadKeysWithPrefix("a.").empty());
}

TEST(Config, ToStringListsSortedPairs)
{
    Config c;
    c.set("b", 2);
    c.set("a", 1);
    EXPECT_EQ(c.toString(), "a = 1\nb = 2\n");
}

} // namespace
