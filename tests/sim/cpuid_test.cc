/**
 * @file
 * SIMD dispatch policy tests. The host override hook lets every path
 * run on any build host: graceful "auto" fallback, explicit "scalar",
 * explicit "avx2" on a capable host, and the two rejection paths — an
 * explicit "avx2" request that the build or the CPU cannot satisfy
 * must raise a typed SimError instead of silently degrading.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/expect_error.hh"
#include "sim/cpuid.hh"

namespace
{

using namespace rasim;
using cpuid::SimdLevel;

/** RAII guard so a failing assertion cannot leak the override into
 *  later tests. */
struct HostOverride
{
    explicit HostOverride(bool has)
    {
        cpuid::setHostOverrideForTest(has);
    }
    ~HostOverride() { cpuid::clearHostOverrideForTest(); }
};

TEST(Cpuid, LevelNames)
{
    EXPECT_STREQ(cpuid::simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(cpuid::simdLevelName(SimdLevel::Avx2), "avx2");
}

TEST(Cpuid, ScalarAlwaysResolves)
{
    HostOverride host(true);
    EXPECT_EQ(cpuid::resolveSimdLevel("scalar"), SimdLevel::Scalar);
}

TEST(Cpuid, AutoPicksAvx2WhenAvailable)
{
    HostOverride host(true);
    SimdLevel want = cpuid::simdCompiledIn() ? SimdLevel::Avx2
                                             : SimdLevel::Scalar;
    EXPECT_EQ(cpuid::resolveSimdLevel("auto"), want);
}

TEST(Cpuid, AutoFallsBackToScalarWithoutHostSupport)
{
    // "auto" on a pre-AVX2 host silently degrades: the scalar kernel
    // is bit-identical, so there is nothing to warn about.
    HostOverride host(false);
    EXPECT_EQ(cpuid::resolveSimdLevel("auto"), SimdLevel::Scalar);
}

TEST(Cpuid, ExplicitAvx2HonouredWhenAvailable)
{
    if (!cpuid::simdCompiledIn())
        GTEST_SKIP() << "AVX2 kernel not compiled in (RASIM_SIMD=off)";
    HostOverride host(true);
    EXPECT_EQ(cpuid::resolveSimdLevel("avx2"), SimdLevel::Avx2);
}

TEST(Cpuid, ExplicitAvx2RejectedWithoutHostSupport)
{
    if (!cpuid::simdCompiledIn())
        GTEST_SKIP() << "AVX2 kernel not compiled in (RASIM_SIMD=off)";
    // A forced kernel choice is a reproducibility statement; the
    // simulator must refuse rather than quietly run scalar.
    HostOverride host(false);
    EXPECT_SIM_ERROR(cpuid::resolveSimdLevel("avx2"), "avx2");
}

TEST(Cpuid, ExplicitAvx2RejectedWhenNotCompiledIn)
{
    if (cpuid::simdCompiledIn())
        GTEST_SKIP() << "AVX2 kernel compiled in (RASIM_SIMD=on)";
    HostOverride host(true);
    EXPECT_SIM_ERROR(cpuid::resolveSimdLevel("avx2"), "avx2");
}

TEST(Cpuid, UnknownPolicyRejected)
{
    EXPECT_SIM_ERROR(cpuid::resolveSimdLevel("sse9"), "sse9");
}

TEST(Cpuid, TypedAsConfigError)
{
    logging::ThrowOnError guard;
    try {
        (void)cpuid::resolveSimdLevel("bogus");
        FAIL() << "no SimError raised";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
    }
}

} // namespace
