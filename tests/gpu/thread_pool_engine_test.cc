/**
 * @file
 * Tests for the worker-pool engine: coverage, reuse, and — the
 * property everything rests on — bit-identical network results
 * regardless of worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpu/thread_pool_engine.hh"
#include "noc/cycle_network.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace
{

using namespace rasim;
using namespace rasim::gpu;

TEST(ThreadPoolEngine, CoversEveryIndexExactlyOnce)
{
    for (int workers : {0, 1, 3, 7}) {
        ThreadPoolEngine engine(workers);
        std::vector<std::atomic<int>> hits(100);
        engine.forEach(100, [&](std::size_t i) { hits[i]++; });
        for (int i = 0; i < 100; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers;
    }
}

TEST(ThreadPoolEngine, HandlesEmptyAndTinyRanges)
{
    ThreadPoolEngine engine(4);
    int runs = 0;
    engine.forEach(0, [&](std::size_t) { ++runs; });
    EXPECT_EQ(runs, 0);
    std::atomic<int> single{0};
    engine.forEach(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        single++;
    });
    EXPECT_EQ(single.load(), 1);
}

TEST(ThreadPoolEngine, ReusableAcrossManyPhases)
{
    ThreadPoolEngine engine(2);
    std::atomic<long> total{0};
    for (int round = 0; round < 500; ++round)
        engine.forEach(16, [&](std::size_t i) {
            total += static_cast<long>(i);
        });
    EXPECT_EQ(total.load(), 500L * (15 * 16 / 2));
    EXPECT_EQ(engine.phasesRun(), 500u);
}

TEST(ThreadPoolEngine, NegativeWorkerCountIsFatal)
{
    EXPECT_DEATH(ThreadPoolEngine(-1), "non-negative");
}

/** Run random traffic, return the full delivery schedule. */
std::vector<std::pair<PacketId, Tick>>
runNetwork(noc::StepEngine *engine)
{
    Simulation sim;
    noc::NocParams p;
    noc::CycleNetwork net(sim, "noc", p);
    if (engine)
        net.setEngine(engine);
    std::vector<std::pair<PacketId, Tick>> order;
    net.setDeliveryHandler([&](const noc::PacketPtr &pkt) {
        order.emplace_back(pkt->id, pkt->deliver_tick);
    });
    Rng rng(0x6e7, 3);
    for (int i = 0; i < 600; ++i) {
        net.inject(noc::makePacket(
            static_cast<PacketId>(i + 1),
            static_cast<NodeId>(rng.range(64)),
            static_cast<NodeId>(rng.range(64)),
            static_cast<noc::MsgClass>(rng.range(3)),
            rng.bernoulli(0.5) ? 8 : 64, static_cast<Tick>(i / 3)));
    }
    net.advanceTo(10000);
    return order;
}

TEST(ThreadPoolEngine, NetworkResultsIdenticalToSerial)
{
    // The headline determinism property: the data-parallel engine must
    // not change simulation results — only where iterations execute.
    auto serial = runNetwork(nullptr);
    for (int workers : {1, 2, 5}) {
        ThreadPoolEngine engine(workers);
        auto parallel = runNetwork(&engine);
        ASSERT_EQ(parallel.size(), serial.size())
            << "workers=" << workers;
        EXPECT_EQ(parallel, serial) << "workers=" << workers;
    }
}

} // namespace
