/**
 * @file
 * Tests for the GPU coprocessor timing model: the launch-overhead vs
 * throughput trade-off that produces the paper's scaling shape.
 */

#include <gtest/gtest.h>

#include "common/expect_error.hh"

#include "gpu/gpu_model.hh"
#include "sim/config.hh"

namespace
{

using namespace rasim;
using namespace rasim::gpu;

TEST(GpuTimingModel, CycleTimeLaunchDominatedWhenSmall)
{
    GpuDeviceParams p;
    p.kernel_launch_ns = 3000;
    p.router_slot_ns = 50;
    p.parallel_width = 128;
    GpuTimingModel m(p);
    // 64 routers fit in one wave: 2 * (3000 + 50).
    EXPECT_DOUBLE_EQ(m.cycleNs(64), 6100.0);
    // 128 routers: still one wave.
    EXPECT_DOUBLE_EQ(m.cycleNs(128), 6100.0);
}

TEST(GpuTimingModel, CycleTimeScalesInWaves)
{
    GpuDeviceParams p;
    p.kernel_launch_ns = 1000;
    p.router_slot_ns = 100;
    p.parallel_width = 100;
    GpuTimingModel m(p);
    EXPECT_DOUBLE_EQ(m.cycleNs(100), 2.0 * (1000 + 100));
    EXPECT_DOUBLE_EQ(m.cycleNs(101), 2.0 * (1000 + 200));
    EXPECT_DOUBLE_EQ(m.cycleNs(500), 2.0 * (1000 + 500));
}

TEST(GpuTimingModel, DeviceScalesSublinearlyUnlikeSerialHost)
{
    GpuTimingModel m;
    // Growing the target 8x grows device time far less than 8x (the
    // root of the paper's 256- vs 512-core result).
    double t64 = m.cycleNs(64);
    double t512 = m.cycleNs(512);
    EXPECT_LT(t512 / t64, 3.0);
    EXPECT_GT(t512, t64);
}

TEST(GpuTimingModel, QuantumAddsBoundaryTransfer)
{
    GpuDeviceParams p;
    p.boundary_transfer_ns = 5000;
    GpuTimingModel m(p);
    EXPECT_DOUBLE_EQ(m.quantumNs(10, 64),
                     10 * m.cycleNs(64) + 5000.0);
}

TEST(GpuTimingModel, OverlapTakesMaxPerQuantum)
{
    GpuDeviceParams p;
    p.kernel_launch_ns = 1000;
    p.router_slot_ns = 10;
    p.parallel_width = 1024;
    p.boundary_transfer_ns = 0;
    GpuTimingModel m(p);
    double device_q = m.quantumNs(100, 256);
    // Host-bound: host per quantum dwarfs the device.
    EXPECT_DOUBLE_EQ(
        m.overlappedRunNs(10.0 * device_q * 4, 4, 100, 256),
        10.0 * device_q * 4);
    // Device-bound: device per quantum dwarfs the host.
    EXPECT_DOUBLE_EQ(m.overlappedRunNs(4.0, 4, 100, 256),
                     4.0 * device_q);
}

TEST(GpuTimingModel, ZeroQuantaDegenerates)
{
    GpuTimingModel m;
    EXPECT_DOUBLE_EQ(m.overlappedRunNs(123.0, 0, 10, 64), 123.0);
}

TEST(GpuDeviceParams, ConfigOverrides)
{
    Config cfg;
    cfg.set("gpu.kernel_launch_ns", 777.0);
    cfg.set("gpu.parallel_width", 32);
    auto p = GpuDeviceParams::fromConfig(cfg);
    EXPECT_DOUBLE_EQ(p.kernel_launch_ns, 777.0);
    EXPECT_EQ(p.parallel_width, 32);
}

TEST(GpuDeviceParams, BadWidthIsFatal)
{
    Config cfg;
    cfg.set("gpu.parallel_width", 0);
    EXPECT_SIM_ERROR(GpuDeviceParams::fromConfig(cfg), "positive");
}

} // namespace
