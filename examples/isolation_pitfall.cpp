/**
 * @file
 * The motivating experiment in miniature: how wrong does an isolated
 * NoC evaluation get when the system context is missing?
 *
 * Runs one workload in context (reciprocal co-simulation), then
 * evaluates the same network isolated under rate-matched uniform
 * synthetic traffic, and prints the gap.
 *
 *   ./isolation_pitfall [system.app=radix]
 */

#include <cstdio>

#include "cosim/full_system.hh"
#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/traffic.hh"

using namespace rasim;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.set("system.app", std::string("radix"));
    cfg.set("system.ops_per_core", 200);
    cfg.set("noc.columns", 8);
    cfg.set("noc.rows", 8);
    cfg.set("noc.vcs_per_vnet", 1);
    cfg.set("noc.buffer_depth", 2);
    cfg.parseArgs(argc, argv);

    // In context.
    auto options = cosim::FullSystemOptions::fromConfig(cfg);
    options.mode = cosim::Mode::CosimCycle;
    cosim::FullSystem system(cfg, options);
    system.run();
    auto *net = system.cycleNetwork();
    double in_context = net->totalLatency.mean();
    Tick cycles = net->curTime();
    double rate = net->packetsDelivered.value() /
                  static_cast<double>(cycles) / 64.0;

    std::printf("in-context mean packet latency: %8.2f cycles "
                "(%.4f pkts/node/cycle offered)\n",
                in_context, rate);

    // Isolated, rate-matched uniform random.
    Simulation iso_sim(cfg);
    auto p = noc::NocParams::fromConfig(cfg);
    noc::CycleNetwork iso(iso_sim, "noc", p);
    workload::TrafficGenerator::Options to;
    to.pattern = workload::TrafficPattern::UniformRandom;
    to.rate = rate;
    to.size_bytes = 8;
    to.data_frac = 0.4;
    workload::TrafficGenerator gen(iso, p.columns, p.rows, to,
                                   iso_sim.makeRng(1));
    for (Tick t = 256; t <= cycles; t += 256) {
        gen.generateTo(t);
        iso.advanceTo(t);
    }
    iso.advanceTo(cycles + 50000);
    double isolated = iso.totalLatency.mean();

    std::printf("isolated  mean packet latency:  %8.2f cycles\n",
                isolated);
    std::printf("isolation error:                %8.1f%%\n",
                100.0 * (isolated - in_context) / in_context);
    std::printf("\nSame network, same average load — but without the "
                "protocol's spatial structure,\nburstiness and "
                "closed-loop throttling, the isolated number answers a "
                "different question.\n");
    return 0;
}
