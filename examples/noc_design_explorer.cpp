/**
 * @file
 * Design-space exploration — the use case the paper motivates: sweep
 * detailed router parameters and observe their impact on *full-system*
 * runtime, which only a co-simulation with system context can show.
 *
 *   ./noc_design_explorer [system.app=radix] [key=value ...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cosim/full_system.hh"

using namespace rasim;

namespace
{

struct Design
{
    int vcs;
    int buffers;
    std::string routing;
};

Tick
evaluate(const Config &base, const Design &d)
{
    auto options = cosim::FullSystemOptions::fromConfig(base);
    options.mode = cosim::Mode::CosimCycle;
    options.noc.vcs_per_vnet = d.vcs;
    options.noc.buffer_depth = d.buffers;
    options.noc.routing = d.routing;
    cosim::FullSystem system(base, options);
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.set("system.app", std::string("radix"));
    cfg.set("system.ops_per_core", 200);
    cfg.set("noc.columns", 8);
    cfg.set("noc.rows", 8);
    cfg.parseArgs(argc, argv);

    std::vector<Design> designs = {
        {1, 2, "xy"}, {1, 4, "xy"},        {2, 2, "xy"},
        {2, 4, "xy"}, {4, 8, "xy"},        {2, 4, "yx"},
        {2, 4, "westfirst"},
    };

    std::printf("%6s %8s %11s %14s %10s\n", "vcs", "buffers", "routing",
                "runtime", "speedup");
    Tick baseline = 0;
    for (const Design &d : designs) {
        Tick rt = evaluate(cfg, d);
        if (!baseline)
            baseline = rt;
        std::printf("%6d %8d %11s %14llu %9.2fx\n", d.vcs, d.buffers,
                    d.routing.c_str(),
                    static_cast<unsigned long long>(rt),
                    static_cast<double>(baseline) /
                        static_cast<double>(rt));
    }
    std::printf("\n(runtimes respond to router design because the "
                "co-simulation closes the loop through the cores)\n");
    return 0;
}
