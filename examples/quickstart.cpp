/**
 * @file
 * Quickstart: assemble a 16-core target with the reciprocal
 * co-simulation, run one workload to completion, and inspect the
 * results — the five-minute tour of the public API.
 *
 *   ./quickstart [system.app=radix] [noc.columns=8] [key=value ...]
 *                [--checkpoint-dir=DIR] [--restore=PATH]
 *
 * --checkpoint-dir=DIR turns on periodic crash-safe checkpointing into
 * DIR (every 8 quanta unless checkpoint.interval_quanta says
 * otherwise); --restore=PATH boots from a checkpoint image or the
 * newest image in a checkpoint directory.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cosim/full_system.hh"
#include "sim/sim_error.hh"
#include "stats/output.hh"

using namespace rasim;

int
main(int argc, char **argv)
{
    // 1. Configuration: defaults, overridable from the command line.
    Config cfg;
    cfg.set("system.mode", std::string("cosim"));
    cfg.set("system.app", std::string("fft"));
    cfg.set("system.ops_per_core", 300);
    cfg.set("noc.columns", 4);
    cfg.set("noc.rows", 4);

    // Checkpoint convenience flags, translated to checkpoint.* keys
    // (explicit key=value arguments still win: they parse later).
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--checkpoint-dir=", 0) == 0) {
            cfg.set("checkpoint.dir", arg.substr(17));
            cfg.set("checkpoint.interval_quanta", 8);
        } else if (arg.rfind("--restore=", 0) == 0) {
            cfg.set("checkpoint.restore", arg.substr(10));
        } else {
            args.push_back(argv[i]);
        }
    }
    cfg.parseArgs(static_cast<int>(args.size()), args.data());

    try {

    // 2. Build the full system: cores, caches, directories, and a
    //    cycle-level NoC coupled through the reciprocal bridge.
    auto options = cosim::FullSystemOptions::fromConfig(cfg);
    cosim::FullSystem system(cfg, options);

    std::printf("target: %zu cores on a %dx%d %s, mode '%s', app '%s'\n",
                system.numCores(), options.noc.columns, options.noc.rows,
                options.noc.topology.c_str(),
                cosim::toString(options.mode), options.app.c_str());

    // 3. Run until every core retires its memory-operation budget.
    Tick runtime = system.run();

    // 4. Results.
    std::printf("\nfinished at tick %llu\n",
                static_cast<unsigned long long>(runtime));
    std::printf("packets through the network: %llu\n",
                static_cast<unsigned long long>(
                    system.packetsDelivered()));
    std::printf("mean packet latency:         %.2f cycles\n",
                system.meanPacketLatency());
    std::printf("latency by message class:    req %.2f / fwd %.2f / "
                "resp %.2f\n",
                system.meanPacketLatency(noc::MsgClass::Request),
                system.meanPacketLatency(noc::MsgClass::Forward),
                system.meanPacketLatency(noc::MsgClass::Response));
    std::printf("reciprocal table built from %llu observations\n",
                static_cast<unsigned long long>(
                    system.bridge().table().observations()));

    // 5. The full statistics tree is one call away.
    std::printf("\n--- full statistics dump ---\n");
    stats::dumpText(std::cout, system.simulation().statsRoot());
    return 0;

    } catch (const SimError &e) {
        // E.g. a remote backend that is unreachable, at capacity, or
        // lost mid-run with health.degrade=false: die with the typed
        // message, not an unhandled-exception abort.
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
