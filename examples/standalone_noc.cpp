/**
 * @file
 * Using the cycle-level NoC as a standalone network simulator: sweep
 * synthetic patterns and injection rates, print latency/throughput —
 * the classic "NoC simulator" workflow (which E1 then critiques).
 *
 *   ./standalone_noc [noc.columns=8] [noc.routing=westfirst] ...
 */

#include <cstdio>

#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/traffic.hh"

using namespace rasim;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    auto params = noc::NocParams::fromConfig(cfg);

    std::printf("%-10s %8s %12s %12s %12s %12s\n", "pattern", "rate",
                "mean_lat", "max_lat", "mean_hops", "throughput");
    for (const char *name : {"uniform", "transpose", "bitcomp",
                             "tornado", "neighbor", "hotspot"}) {
        for (double rate : {0.01, 0.05, 0.10}) {
            Simulation sim(cfg);
            noc::CycleNetwork net(sim, "noc", params);
            workload::TrafficGenerator::Options o;
            o.pattern = workload::patternFromName(name);
            o.rate = rate;
            o.size_bytes = 16;
            workload::TrafficGenerator gen(net, params.columns,
                                           params.rows, o,
                                           sim.makeRng(7));
            const Tick cycles = 20000;
            for (Tick t = 128; t <= cycles; t += 128) {
                gen.generateTo(t);
                net.advanceTo(t);
            }
            net.advanceTo(cycles + 100000); // drain
            double tput = net.flitsDelivered.value() /
                          static_cast<double>(cycles) /
                          net.numNodes();
            std::printf("%-10s %8.2f %12.2f %12.0f %12.2f %12.4f\n",
                        name, rate, net.totalLatency.mean(),
                        net.totalLatency.maxValue(),
                        net.hopCount.mean(), tput);
        }
    }
    std::printf("\n(throughput in flits/node/cycle; latencies explode "
                "past each pattern's saturation point)\n");
    return 0;
}
