/**
 * @file
 * Packet-trace workflow: record the traffic a workload offers the
 * network during a co-simulation, save it as CSV, and replay it
 * through a standalone network — the bridge between the full-system
 * and NoC-only worlds.
 *
 *   ./trace_tools record out.csv [system.app=fft ...]
 *   ./trace_tools replay in.csv  [noc.vcs_per_vnet=4 ...]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "cosim/full_system.hh"
#include "sim/logging.hh"
#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/trace.hh"

using namespace rasim;

namespace
{

int
record(const std::string &path, Config cfg)
{
    auto options = cosim::FullSystemOptions::fromConfig(cfg);
    options.mode = cosim::Mode::CosimCycle;
    cosim::FullSystem system(cfg, options);

    workload::PacketTrace trace;
    system.bridge().setDeliveryObserver(
        [&trace](const noc::PacketPtr &pkt) { trace.record(pkt); });
    system.run();
    trace.sortByTime();

    std::ofstream out(path);
    if (!out)
        fatal("cannot write '", path, "'");
    trace.save(out);
    std::printf("recorded %zu packets over %llu cycles to %s\n",
                trace.size(),
                static_cast<unsigned long long>(
                    system.cycleNetwork()->curTime()),
                path.c_str());
    return 0;
}

int
replay(const std::string &path, Config cfg)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read '", path, "'");
    workload::PacketTrace trace = workload::PacketTrace::load(in);
    if (trace.empty())
        fatal("trace '", path, "' is empty");

    Simulation sim(cfg);
    auto params = noc::NocParams::fromConfig(cfg);
    noc::CycleNetwork net(sim, "noc", params);
    std::uint64_t delivered = 0;
    net.setDeliveryHandler(
        [&delivered](const noc::PacketPtr &) { ++delivered; });

    workload::TraceReplayer rep(net, trace);
    Tick horizon = trace.records().back().inject_tick + 1;
    for (Tick t = 256; t < horizon + 256; t += 256) {
        rep.replayTo(t);
        net.advanceTo(t);
    }
    net.advanceTo(horizon + 200000); // drain

    std::printf("replayed %zu packets: delivered %llu, mean latency "
                "%.2f cycles, mean hops %.2f\n",
                trace.size(),
                static_cast<unsigned long long>(delivered),
                net.totalLatency.mean(), net.hopCount.mean());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s record|replay <file.csv> [key=value...]\n",
                     argv[0]);
        return 1;
    }
    Config cfg;
    cfg.set("system.ops_per_core", 200);
    cfg.parseArgs(argc, argv);
    if (std::strcmp(argv[1], "record") == 0)
        return record(argv[2], std::move(cfg));
    if (std::strcmp(argv[1], "replay") == 0)
        return replay(argv[2], std::move(cfg));
    std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
    return 1;
}
