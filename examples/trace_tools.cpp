/**
 * @file
 * Packet-trace workflow: record the traffic a workload offers the
 * network during a co-simulation, save it, and replay it through a
 * standalone network — the bridge between the full-system and
 * NoC-only worlds.
 *
 *   ./trace_tools record out.csv [system.app=fft ...]
 *   ./trace_tools replay in.csv  [noc.vcs_per_vnet=4 ...]
 *   ./trace_tools convert in.csv out.tbin     (and back)
 *
 * A ".tbin" extension selects the checksummed binary trace format
 * (compact, corruption-detecting); anything else is CSV.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "cosim/full_system.hh"
#include "sim/logging.hh"
#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/trace.hh"

using namespace rasim;

namespace
{

bool
isBinaryPath(const std::string &path)
{
    const std::string ext = ".tbin";
    return path.size() >= ext.size() &&
           path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

workload::PacketTrace
loadTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '", path, "'");
    return isBinaryPath(path) ? workload::PacketTrace::loadBinary(in)
                              : workload::PacketTrace::load(in);
}

void
saveTrace(const workload::PacketTrace &trace, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write '", path, "'");
    if (isBinaryPath(path))
        trace.saveBinary(out);
    else
        trace.save(out);
}

int
record(const std::string &path, Config cfg)
{
    auto options = cosim::FullSystemOptions::fromConfig(cfg);
    options.mode = cosim::Mode::CosimCycle;
    cosim::FullSystem system(cfg, options);

    workload::PacketTrace trace;
    system.bridge().setDeliveryObserver(
        [&trace](const noc::PacketPtr &pkt) { trace.record(pkt); });
    system.run();
    trace.sortByTime();

    saveTrace(trace, path);
    std::printf("recorded %zu packets over %llu cycles to %s\n",
                trace.size(),
                static_cast<unsigned long long>(
                    system.cycleNetwork()->curTime()),
                path.c_str());
    return 0;
}

int
replay(const std::string &path, Config cfg)
{
    workload::PacketTrace trace = loadTrace(path);
    if (trace.empty())
        fatal("trace '", path, "' is empty");

    Simulation sim(cfg);
    auto params = noc::NocParams::fromConfig(cfg);
    noc::CycleNetwork net(sim, "noc", params);
    std::uint64_t delivered = 0;
    net.setDeliveryHandler(
        [&delivered](const noc::PacketPtr &) { ++delivered; });

    workload::TraceReplayer rep(net, trace);
    Tick horizon = trace.records().back().inject_tick + 1;
    for (Tick t = 256; t < horizon + 256; t += 256) {
        rep.replayTo(t);
        net.advanceTo(t);
    }
    net.advanceTo(horizon + 200000); // drain

    std::printf("replayed %zu packets: delivered %llu, mean latency "
                "%.2f cycles, mean hops %.2f\n",
                trace.size(),
                static_cast<unsigned long long>(delivered),
                net.totalLatency.mean(), net.hopCount.mean());
    return 0;
}

int
convert(const std::string &from, const std::string &to)
{
    workload::PacketTrace trace = loadTrace(from);
    saveTrace(trace, to);
    std::printf("converted %zu packets: %s -> %s\n", trace.size(),
                from.c_str(), to.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(
            stderr,
            "usage: %s record|replay <file[.tbin]> [key=value...]\n"
            "       %s convert <from[.tbin]> <to[.tbin]>\n",
            argv[0], argv[0]);
        return 1;
    }
    Config cfg;
    cfg.set("system.ops_per_core", 200);
    cfg.parseArgs(argc, argv);
    if (std::strcmp(argv[1], "record") == 0)
        return record(argv[2], std::move(cfg));
    if (std::strcmp(argv[1], "replay") == 0)
        return replay(argv[2], std::move(cfg));
    if (std::strcmp(argv[1], "convert") == 0) {
        if (argc < 4) {
            std::fprintf(stderr, "convert needs <from> and <to>\n");
            return 1;
        }
        return convert(argv[2], argv[3]);
    }
    std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
    return 1;
}
