/**
 * @file
 * Scaling study: run the reciprocal co-simulation at growing target
 * sizes, report where the wall-clock goes, and what the modelled GPU
 * coprocessor (see DESIGN.md substitution) buys at each scale.
 *
 *   ./scale_out_gpu [system.ops_per_core=80]
 *                   [--checkpoint-dir=DIR] [--restore=DIR]
 *
 * With --checkpoint-dir each target checkpoints into its own
 * DIR/<cols>x<rows> subdirectory; --restore resumes every target from
 * the matching subdirectory.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cosim/full_system.hh"
#include "gpu/gpu_model.hh"

using namespace rasim;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.set("system.app", std::string("fft"));
    cfg.set("system.ops_per_core", 80);

    // Checkpoint convenience flags (per-target subdirectories; the
    // config fingerprint refuses cross-target images anyway).
    std::string ckpt_root, restore_root;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--checkpoint-dir=", 0) == 0)
            ckpt_root = arg.substr(17);
        else if (arg.rfind("--restore=", 0) == 0)
            restore_root = arg.substr(10);
        else
            args.push_back(argv[i]);
    }
    cfg.parseArgs(static_cast<int>(args.size()), args.data());

    gpu::GpuTimingModel device(gpu::GpuDeviceParams::fromConfig(cfg));

    std::printf("%10s %10s %12s %12s %12s %10s\n", "target", "quanta",
                "host_ms", "net_ms", "cpu+gpu_ms", "gain");
    const struct
    {
        int cols, rows;
    } targets[] = {{8, 8}, {16, 8}, {16, 16}, {16, 32}};

    for (const auto &t : targets) {
        auto options = cosim::FullSystemOptions::fromConfig(cfg);
        options.mode = cosim::Mode::CosimCycle;
        options.noc.columns = t.cols;
        options.noc.rows = t.rows;
        std::string target = std::to_string(t.cols) + "x" +
                             std::to_string(t.rows);
        if (!ckpt_root.empty()) {
            options.checkpoint.dir = ckpt_root + "/" + target;
            if (options.checkpoint.interval_quanta == 0)
                options.checkpoint.interval_quanta = 8;
        }
        if (!restore_root.empty())
            options.checkpoint.restore = restore_root + "/" + target;
        cosim::FullSystem system(cfg, options);
        system.run();

        double host = system.bridge().hostNs();
        double net = system.bridge().netNs();
        double cpu_only = host + net;
        double cpu_gpu = device.overlappedRunNs(
            host, system.bridge().quantaRun(), options.quantum,
            t.cols * t.rows);
        std::printf("%7dx%-2d %10llu %12.1f %12.1f %12.1f %9.1f%%\n",
                    t.cols, t.rows,
                    static_cast<unsigned long long>(
                        system.bridge().quantaRun()),
                    host / 1e6, net / 1e6, cpu_gpu / 1e6,
                    100.0 * (1.0 - cpu_gpu / cpu_only));
    }
    std::printf("\n(gain = modelled CPU+GPU time vs measured CPU-only "
                "time; negative means the\n coprocessor's launch "
                "overhead dominates at that scale)\n");
    return 0;
}
