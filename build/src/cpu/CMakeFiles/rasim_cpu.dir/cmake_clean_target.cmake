file(REMOVE_RECURSE
  "librasim_cpu.a"
)
