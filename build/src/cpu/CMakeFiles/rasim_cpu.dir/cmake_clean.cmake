file(REMOVE_RECURSE
  "CMakeFiles/rasim_cpu.dir/core.cc.o"
  "CMakeFiles/rasim_cpu.dir/core.cc.o.d"
  "librasim_cpu.a"
  "librasim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
