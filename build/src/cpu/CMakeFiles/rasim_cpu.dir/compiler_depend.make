# Empty compiler generated dependencies file for rasim_cpu.
# This may be replaced when dependencies are built.
