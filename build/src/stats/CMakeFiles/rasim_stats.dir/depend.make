# Empty dependencies file for rasim_stats.
# This may be replaced when dependencies are built.
