file(REMOVE_RECURSE
  "CMakeFiles/rasim_stats.dir/distribution.cc.o"
  "CMakeFiles/rasim_stats.dir/distribution.cc.o.d"
  "CMakeFiles/rasim_stats.dir/group.cc.o"
  "CMakeFiles/rasim_stats.dir/group.cc.o.d"
  "CMakeFiles/rasim_stats.dir/output.cc.o"
  "CMakeFiles/rasim_stats.dir/output.cc.o.d"
  "CMakeFiles/rasim_stats.dir/stat.cc.o"
  "CMakeFiles/rasim_stats.dir/stat.cc.o.d"
  "librasim_stats.a"
  "librasim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
