file(REMOVE_RECURSE
  "librasim_stats.a"
)
