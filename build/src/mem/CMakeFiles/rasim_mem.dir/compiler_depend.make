# Empty compiler generated dependencies file for rasim_mem.
# This may be replaced when dependencies are built.
