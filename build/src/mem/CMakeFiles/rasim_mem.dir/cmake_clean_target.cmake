file(REMOVE_RECURSE
  "librasim_mem.a"
)
