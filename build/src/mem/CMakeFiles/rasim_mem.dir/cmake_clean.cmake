file(REMOVE_RECURSE
  "CMakeFiles/rasim_mem.dir/directory.cc.o"
  "CMakeFiles/rasim_mem.dir/directory.cc.o.d"
  "CMakeFiles/rasim_mem.dir/dram.cc.o"
  "CMakeFiles/rasim_mem.dir/dram.cc.o.d"
  "CMakeFiles/rasim_mem.dir/l1_cache.cc.o"
  "CMakeFiles/rasim_mem.dir/l1_cache.cc.o.d"
  "CMakeFiles/rasim_mem.dir/memory_system.cc.o"
  "CMakeFiles/rasim_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/rasim_mem.dir/message_hub.cc.o"
  "CMakeFiles/rasim_mem.dir/message_hub.cc.o.d"
  "CMakeFiles/rasim_mem.dir/msg.cc.o"
  "CMakeFiles/rasim_mem.dir/msg.cc.o.d"
  "CMakeFiles/rasim_mem.dir/replacement.cc.o"
  "CMakeFiles/rasim_mem.dir/replacement.cc.o.d"
  "librasim_mem.a"
  "librasim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
