
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/directory.cc" "src/mem/CMakeFiles/rasim_mem.dir/directory.cc.o" "gcc" "src/mem/CMakeFiles/rasim_mem.dir/directory.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/rasim_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/rasim_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/l1_cache.cc" "src/mem/CMakeFiles/rasim_mem.dir/l1_cache.cc.o" "gcc" "src/mem/CMakeFiles/rasim_mem.dir/l1_cache.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/rasim_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/rasim_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/message_hub.cc" "src/mem/CMakeFiles/rasim_mem.dir/message_hub.cc.o" "gcc" "src/mem/CMakeFiles/rasim_mem.dir/message_hub.cc.o.d"
  "/root/repo/src/mem/msg.cc" "src/mem/CMakeFiles/rasim_mem.dir/msg.cc.o" "gcc" "src/mem/CMakeFiles/rasim_mem.dir/msg.cc.o.d"
  "/root/repo/src/mem/replacement.cc" "src/mem/CMakeFiles/rasim_mem.dir/replacement.cc.o" "gcc" "src/mem/CMakeFiles/rasim_mem.dir/replacement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/rasim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rasim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
