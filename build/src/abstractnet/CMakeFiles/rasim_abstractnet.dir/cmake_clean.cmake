file(REMOVE_RECURSE
  "CMakeFiles/rasim_abstractnet.dir/abstract_network.cc.o"
  "CMakeFiles/rasim_abstractnet.dir/abstract_network.cc.o.d"
  "CMakeFiles/rasim_abstractnet.dir/latency_model.cc.o"
  "CMakeFiles/rasim_abstractnet.dir/latency_model.cc.o.d"
  "CMakeFiles/rasim_abstractnet.dir/latency_table.cc.o"
  "CMakeFiles/rasim_abstractnet.dir/latency_table.cc.o.d"
  "librasim_abstractnet.a"
  "librasim_abstractnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_abstractnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
