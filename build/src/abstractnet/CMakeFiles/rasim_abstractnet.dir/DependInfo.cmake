
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abstractnet/abstract_network.cc" "src/abstractnet/CMakeFiles/rasim_abstractnet.dir/abstract_network.cc.o" "gcc" "src/abstractnet/CMakeFiles/rasim_abstractnet.dir/abstract_network.cc.o.d"
  "/root/repo/src/abstractnet/latency_model.cc" "src/abstractnet/CMakeFiles/rasim_abstractnet.dir/latency_model.cc.o" "gcc" "src/abstractnet/CMakeFiles/rasim_abstractnet.dir/latency_model.cc.o.d"
  "/root/repo/src/abstractnet/latency_table.cc" "src/abstractnet/CMakeFiles/rasim_abstractnet.dir/latency_table.cc.o" "gcc" "src/abstractnet/CMakeFiles/rasim_abstractnet.dir/latency_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/rasim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rasim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
