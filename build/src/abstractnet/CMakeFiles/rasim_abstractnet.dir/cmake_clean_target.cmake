file(REMOVE_RECURSE
  "librasim_abstractnet.a"
)
