# Empty dependencies file for rasim_abstractnet.
# This may be replaced when dependencies are built.
