# Empty compiler generated dependencies file for rasim_cosim.
# This may be replaced when dependencies are built.
