file(REMOVE_RECURSE
  "CMakeFiles/rasim_cosim.dir/bridge.cc.o"
  "CMakeFiles/rasim_cosim.dir/bridge.cc.o.d"
  "CMakeFiles/rasim_cosim.dir/full_system.cc.o"
  "CMakeFiles/rasim_cosim.dir/full_system.cc.o.d"
  "librasim_cosim.a"
  "librasim_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
