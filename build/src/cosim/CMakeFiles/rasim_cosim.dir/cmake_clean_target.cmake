file(REMOVE_RECURSE
  "librasim_cosim.a"
)
