file(REMOVE_RECURSE
  "CMakeFiles/rasim_workload.dir/address_stream.cc.o"
  "CMakeFiles/rasim_workload.dir/address_stream.cc.o.d"
  "CMakeFiles/rasim_workload.dir/app_profiles.cc.o"
  "CMakeFiles/rasim_workload.dir/app_profiles.cc.o.d"
  "CMakeFiles/rasim_workload.dir/trace.cc.o"
  "CMakeFiles/rasim_workload.dir/trace.cc.o.d"
  "CMakeFiles/rasim_workload.dir/traffic.cc.o"
  "CMakeFiles/rasim_workload.dir/traffic.cc.o.d"
  "librasim_workload.a"
  "librasim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
