# Empty compiler generated dependencies file for rasim_workload.
# This may be replaced when dependencies are built.
