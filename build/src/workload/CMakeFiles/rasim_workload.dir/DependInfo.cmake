
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/address_stream.cc" "src/workload/CMakeFiles/rasim_workload.dir/address_stream.cc.o" "gcc" "src/workload/CMakeFiles/rasim_workload.dir/address_stream.cc.o.d"
  "/root/repo/src/workload/app_profiles.cc" "src/workload/CMakeFiles/rasim_workload.dir/app_profiles.cc.o" "gcc" "src/workload/CMakeFiles/rasim_workload.dir/app_profiles.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/rasim_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/rasim_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/traffic.cc" "src/workload/CMakeFiles/rasim_workload.dir/traffic.cc.o" "gcc" "src/workload/CMakeFiles/rasim_workload.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/rasim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rasim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
