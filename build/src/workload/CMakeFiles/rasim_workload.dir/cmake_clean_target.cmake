file(REMOVE_RECURSE
  "librasim_workload.a"
)
