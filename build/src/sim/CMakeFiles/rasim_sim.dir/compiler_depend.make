# Empty compiler generated dependencies file for rasim_sim.
# This may be replaced when dependencies are built.
