file(REMOVE_RECURSE
  "CMakeFiles/rasim_sim.dir/clocked.cc.o"
  "CMakeFiles/rasim_sim.dir/clocked.cc.o.d"
  "CMakeFiles/rasim_sim.dir/config.cc.o"
  "CMakeFiles/rasim_sim.dir/config.cc.o.d"
  "CMakeFiles/rasim_sim.dir/event.cc.o"
  "CMakeFiles/rasim_sim.dir/event.cc.o.d"
  "CMakeFiles/rasim_sim.dir/eventq.cc.o"
  "CMakeFiles/rasim_sim.dir/eventq.cc.o.d"
  "CMakeFiles/rasim_sim.dir/logging.cc.o"
  "CMakeFiles/rasim_sim.dir/logging.cc.o.d"
  "CMakeFiles/rasim_sim.dir/rng.cc.o"
  "CMakeFiles/rasim_sim.dir/rng.cc.o.d"
  "CMakeFiles/rasim_sim.dir/sim_object.cc.o"
  "CMakeFiles/rasim_sim.dir/sim_object.cc.o.d"
  "CMakeFiles/rasim_sim.dir/simulation.cc.o"
  "CMakeFiles/rasim_sim.dir/simulation.cc.o.d"
  "CMakeFiles/rasim_sim.dir/trace.cc.o"
  "CMakeFiles/rasim_sim.dir/trace.cc.o.d"
  "librasim_sim.a"
  "librasim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
