
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clocked.cc" "src/sim/CMakeFiles/rasim_sim.dir/clocked.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/clocked.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/rasim_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/event.cc" "src/sim/CMakeFiles/rasim_sim.dir/event.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/event.cc.o.d"
  "/root/repo/src/sim/eventq.cc" "src/sim/CMakeFiles/rasim_sim.dir/eventq.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/eventq.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/sim/CMakeFiles/rasim_sim.dir/logging.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/logging.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/sim/CMakeFiles/rasim_sim.dir/rng.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/rng.cc.o.d"
  "/root/repo/src/sim/sim_object.cc" "src/sim/CMakeFiles/rasim_sim.dir/sim_object.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/sim_object.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/sim/CMakeFiles/rasim_sim.dir/simulation.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/simulation.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/rasim_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/rasim_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/rasim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
