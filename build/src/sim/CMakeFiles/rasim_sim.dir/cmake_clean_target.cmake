file(REMOVE_RECURSE
  "librasim_sim.a"
)
