file(REMOVE_RECURSE
  "librasim_noc.a"
)
