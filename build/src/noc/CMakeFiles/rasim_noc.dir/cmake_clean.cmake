file(REMOVE_RECURSE
  "CMakeFiles/rasim_noc.dir/cycle_network.cc.o"
  "CMakeFiles/rasim_noc.dir/cycle_network.cc.o.d"
  "CMakeFiles/rasim_noc.dir/deflection_network.cc.o"
  "CMakeFiles/rasim_noc.dir/deflection_network.cc.o.d"
  "CMakeFiles/rasim_noc.dir/nic.cc.o"
  "CMakeFiles/rasim_noc.dir/nic.cc.o.d"
  "CMakeFiles/rasim_noc.dir/packet.cc.o"
  "CMakeFiles/rasim_noc.dir/packet.cc.o.d"
  "CMakeFiles/rasim_noc.dir/params.cc.o"
  "CMakeFiles/rasim_noc.dir/params.cc.o.d"
  "CMakeFiles/rasim_noc.dir/power.cc.o"
  "CMakeFiles/rasim_noc.dir/power.cc.o.d"
  "CMakeFiles/rasim_noc.dir/router.cc.o"
  "CMakeFiles/rasim_noc.dir/router.cc.o.d"
  "CMakeFiles/rasim_noc.dir/routing.cc.o"
  "CMakeFiles/rasim_noc.dir/routing.cc.o.d"
  "CMakeFiles/rasim_noc.dir/topology.cc.o"
  "CMakeFiles/rasim_noc.dir/topology.cc.o.d"
  "librasim_noc.a"
  "librasim_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
