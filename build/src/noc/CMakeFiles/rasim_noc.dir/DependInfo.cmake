
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/cycle_network.cc" "src/noc/CMakeFiles/rasim_noc.dir/cycle_network.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/cycle_network.cc.o.d"
  "/root/repo/src/noc/deflection_network.cc" "src/noc/CMakeFiles/rasim_noc.dir/deflection_network.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/deflection_network.cc.o.d"
  "/root/repo/src/noc/nic.cc" "src/noc/CMakeFiles/rasim_noc.dir/nic.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/nic.cc.o.d"
  "/root/repo/src/noc/packet.cc" "src/noc/CMakeFiles/rasim_noc.dir/packet.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/packet.cc.o.d"
  "/root/repo/src/noc/params.cc" "src/noc/CMakeFiles/rasim_noc.dir/params.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/params.cc.o.d"
  "/root/repo/src/noc/power.cc" "src/noc/CMakeFiles/rasim_noc.dir/power.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/power.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/noc/CMakeFiles/rasim_noc.dir/router.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/router.cc.o.d"
  "/root/repo/src/noc/routing.cc" "src/noc/CMakeFiles/rasim_noc.dir/routing.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/routing.cc.o.d"
  "/root/repo/src/noc/topology.cc" "src/noc/CMakeFiles/rasim_noc.dir/topology.cc.o" "gcc" "src/noc/CMakeFiles/rasim_noc.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rasim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
