# Empty compiler generated dependencies file for rasim_noc.
# This may be replaced when dependencies are built.
