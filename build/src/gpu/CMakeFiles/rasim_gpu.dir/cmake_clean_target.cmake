file(REMOVE_RECURSE
  "librasim_gpu.a"
)
