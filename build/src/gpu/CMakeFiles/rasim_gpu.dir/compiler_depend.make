# Empty compiler generated dependencies file for rasim_gpu.
# This may be replaced when dependencies are built.
