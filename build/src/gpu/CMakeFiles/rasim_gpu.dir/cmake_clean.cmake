file(REMOVE_RECURSE
  "CMakeFiles/rasim_gpu.dir/gpu_model.cc.o"
  "CMakeFiles/rasim_gpu.dir/gpu_model.cc.o.d"
  "CMakeFiles/rasim_gpu.dir/thread_pool_engine.cc.o"
  "CMakeFiles/rasim_gpu.dir/thread_pool_engine.cc.o.d"
  "librasim_gpu.a"
  "librasim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
