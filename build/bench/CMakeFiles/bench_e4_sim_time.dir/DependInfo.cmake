
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_sim_time.cc" "bench/CMakeFiles/bench_e4_sim_time.dir/bench_e4_sim_time.cc.o" "gcc" "bench/CMakeFiles/bench_e4_sim_time.dir/bench_e4_sim_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cosim/CMakeFiles/rasim_cosim.dir/DependInfo.cmake"
  "/root/repo/build/src/abstractnet/CMakeFiles/rasim_abstractnet.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rasim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rasim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rasim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/rasim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/rasim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rasim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
