# Empty compiler generated dependencies file for bench_e4_sim_time.
# This may be replaced when dependencies are built.
