# Empty dependencies file for bench_e1_isolation.
# This may be replaced when dependencies are built.
