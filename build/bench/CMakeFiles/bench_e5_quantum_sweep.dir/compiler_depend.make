# Empty compiler generated dependencies file for bench_e5_quantum_sweep.
# This may be replaced when dependencies are built.
