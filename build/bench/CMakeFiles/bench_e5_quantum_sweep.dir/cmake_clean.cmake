file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_quantum_sweep.dir/bench_e5_quantum_sweep.cc.o"
  "CMakeFiles/bench_e5_quantum_sweep.dir/bench_e5_quantum_sweep.cc.o.d"
  "bench_e5_quantum_sweep"
  "bench_e5_quantum_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_quantum_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
