# Empty dependencies file for bench_a1_router_orgs.
# This may be replaced when dependencies are built.
