file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_router_orgs.dir/bench_a1_router_orgs.cc.o"
  "CMakeFiles/bench_a1_router_orgs.dir/bench_a1_router_orgs.cc.o.d"
  "bench_a1_router_orgs"
  "bench_a1_router_orgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_router_orgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
