file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_latency_error.dir/bench_e2_latency_error.cc.o"
  "CMakeFiles/bench_e2_latency_error.dir/bench_e2_latency_error.cc.o.d"
  "bench_e2_latency_error"
  "bench_e2_latency_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_latency_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
