# Empty compiler generated dependencies file for bench_e2_latency_error.
# This may be replaced when dependencies are built.
