# Empty dependencies file for scale_out_gpu.
# This may be replaced when dependencies are built.
