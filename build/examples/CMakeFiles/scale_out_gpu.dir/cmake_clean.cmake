file(REMOVE_RECURSE
  "CMakeFiles/scale_out_gpu.dir/scale_out_gpu.cpp.o"
  "CMakeFiles/scale_out_gpu.dir/scale_out_gpu.cpp.o.d"
  "scale_out_gpu"
  "scale_out_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_out_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
