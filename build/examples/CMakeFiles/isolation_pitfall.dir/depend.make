# Empty dependencies file for isolation_pitfall.
# This may be replaced when dependencies are built.
