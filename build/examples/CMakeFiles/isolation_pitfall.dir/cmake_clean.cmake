file(REMOVE_RECURSE
  "CMakeFiles/isolation_pitfall.dir/isolation_pitfall.cpp.o"
  "CMakeFiles/isolation_pitfall.dir/isolation_pitfall.cpp.o.d"
  "isolation_pitfall"
  "isolation_pitfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_pitfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
