# Empty dependencies file for standalone_noc.
# This may be replaced when dependencies are built.
