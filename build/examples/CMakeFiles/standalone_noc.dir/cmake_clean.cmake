file(REMOVE_RECURSE
  "CMakeFiles/standalone_noc.dir/standalone_noc.cpp.o"
  "CMakeFiles/standalone_noc.dir/standalone_noc.cpp.o.d"
  "standalone_noc"
  "standalone_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standalone_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
