file(REMOVE_RECURSE
  "CMakeFiles/noc_design_explorer.dir/noc_design_explorer.cpp.o"
  "CMakeFiles/noc_design_explorer.dir/noc_design_explorer.cpp.o.d"
  "noc_design_explorer"
  "noc_design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
