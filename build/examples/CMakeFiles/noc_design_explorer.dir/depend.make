# Empty dependencies file for noc_design_explorer.
# This may be replaced when dependencies are built.
