file(REMOVE_RECURSE
  "CMakeFiles/noc_test.dir/deflection_property_test.cc.o"
  "CMakeFiles/noc_test.dir/deflection_property_test.cc.o.d"
  "CMakeFiles/noc_test.dir/deflection_test.cc.o"
  "CMakeFiles/noc_test.dir/deflection_test.cc.o.d"
  "CMakeFiles/noc_test.dir/link_test.cc.o"
  "CMakeFiles/noc_test.dir/link_test.cc.o.d"
  "CMakeFiles/noc_test.dir/network_property_test.cc.o"
  "CMakeFiles/noc_test.dir/network_property_test.cc.o.d"
  "CMakeFiles/noc_test.dir/network_test.cc.o"
  "CMakeFiles/noc_test.dir/network_test.cc.o.d"
  "CMakeFiles/noc_test.dir/packet_test.cc.o"
  "CMakeFiles/noc_test.dir/packet_test.cc.o.d"
  "CMakeFiles/noc_test.dir/power_test.cc.o"
  "CMakeFiles/noc_test.dir/power_test.cc.o.d"
  "CMakeFiles/noc_test.dir/routing_test.cc.o"
  "CMakeFiles/noc_test.dir/routing_test.cc.o.d"
  "CMakeFiles/noc_test.dir/topology_test.cc.o"
  "CMakeFiles/noc_test.dir/topology_test.cc.o.d"
  "noc_test"
  "noc_test.pdb"
  "noc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
