# CMake generated Testfile for 
# Source directory: /root/repo/tests/cosim
# Build directory: /root/repo/build/tests/cosim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cosim/cosim_test[1]_include.cmake")
