# Empty compiler generated dependencies file for abstractnet_test.
# This may be replaced when dependencies are built.
