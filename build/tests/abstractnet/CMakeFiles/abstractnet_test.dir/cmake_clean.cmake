file(REMOVE_RECURSE
  "CMakeFiles/abstractnet_test.dir/abstract_network_test.cc.o"
  "CMakeFiles/abstractnet_test.dir/abstract_network_test.cc.o.d"
  "CMakeFiles/abstractnet_test.dir/latency_model_test.cc.o"
  "CMakeFiles/abstractnet_test.dir/latency_model_test.cc.o.d"
  "CMakeFiles/abstractnet_test.dir/latency_table_test.cc.o"
  "CMakeFiles/abstractnet_test.dir/latency_table_test.cc.o.d"
  "abstractnet_test"
  "abstractnet_test.pdb"
  "abstractnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstractnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
